// Lane-packed multi-source sweep equivalence: every lane of
// csr_earliest_arrival_batch must be bit-identical to a scalar
// csr_earliest_arrival from that lane's source — across ragged lane
// counts, duplicate sources, late/beyond-horizon starts, isolated
// vertices, the delta overlay (including across a compaction
// boundary), and workspace reuse across indexes. The converted
// all-pairs callers must be bit-identical at 1/2/8 threads and to
// scalar reference loops.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <set>
#include <vector>

#include "temporal/journeys.hpp"
#include "temporal/multi_source.hpp"
#include "temporal/smallworld_metrics.hpp"
#include "temporal/temporal_centrality.hpp"
#include "temporal/temporal_csr.hpp"
#include "temporal/temporal_delta.hpp"
#include "util/rng.hpp"

namespace structnet {
namespace {

/// Random contact trace over vertices [0, n - isolated): the tail stays
/// contact-free so sweeps must cope with vertices the seeds list skips.
TemporalGraph random_trace(Rng& rng, std::size_t n, TimeUnit horizon,
                           std::size_t contacts, std::size_t isolated = 0) {
  TemporalGraph eg(n, horizon);
  const std::size_t active = n - isolated;
  for (std::size_t i = 0; i < contacts; ++i) {
    const auto u = static_cast<VertexId>(rng.index(active));
    const auto v = static_cast<VertexId>(rng.index(active));
    if (u == v) continue;
    eg.add_contact(u, v, static_cast<TimeUnit>(rng.index(horizon)));
  }
  return eg;
}

/// The scalar payload bytes (what the broker's TemporalDistances path
/// serves): arrival for every vertex after the last scalar sweep.
std::vector<TimeUnit> scalar_row(std::size_t n, const TemporalWorkspace& ws) {
  std::vector<TimeUnit> row(n);
  for (std::size_t v = 0; v < row.size(); ++v) {
    row[v] = ws.arrival(static_cast<VertexId>(v));
  }
  return row;
}

/// Asserts each lane of one batch sweep reproduces the scalar kernel
/// bit-for-bit (arrivals always; via-from when record_via).
template <class Index>
void expect_lanes_match_scalar(const Index& csr,
                               const std::vector<VertexId>& sources,
                               TimeUnit t_start, MultiSourceWorkspace& ws,
                               bool record_via) {
  csr_earliest_arrival_batch(
      csr, {sources.data(), sources.size()}, t_start, ws, record_via);
  TemporalWorkspace scalar;
  for (std::size_t l = 0; l < sources.size(); ++l) {
    csr_earliest_arrival(csr, sources[l], t_start, scalar);
    std::size_t reached = 0;
    for (std::size_t v = 0; v < csr.vertex_count(); ++v) {
      const auto id = static_cast<VertexId>(v);
      ASSERT_EQ(ws.arrival(l, id), scalar.arrival(id))
          << "lane=" << l << " source=" << sources[l] << " v=" << v;
      if (record_via) {
        ASSERT_EQ(ws.via_from(l, id), scalar.via(id).from)
            << "lane=" << l << " source=" << sources[l] << " v=" << v;
      }
      if (scalar.arrival(id) != kNeverTime) ++reached;
    }
    ASSERT_EQ(ws.reached_count(l), reached) << "lane=" << l;
    ASSERT_EQ(ws.completion(l), scalar_row(csr.vertex_count(), scalar));
  }
}

TEST(MultiSourceEquivalence, RaggedLaneCountsMatchScalarWithReusedWorkspace) {
  Rng rng(42);
  const TemporalGraph eg = random_trace(rng, 90, 16, 260, /*isolated=*/4);
  const TemporalCsr csr(eg);
  MultiSourceWorkspace ws;  // deliberately reused across every shape
  Rng pick(7);
  for (const std::size_t lanes : {std::size_t{1}, std::size_t{3},
                                  std::size_t{17}, std::size_t{64}}) {
    std::vector<VertexId> sources;
    for (std::size_t l = 0; l < lanes; ++l) {
      sources.push_back(static_cast<VertexId>(pick.index(eg.vertex_count())));
    }
    expect_lanes_match_scalar(csr, sources, 0, ws, /*record_via=*/true);
  }
}

TEST(MultiSourceEquivalence, DuplicateSourcesEvolveIdentically) {
  Rng rng(5);
  const TemporalGraph eg = random_trace(rng, 40, 10, 120);
  const TemporalCsr csr(eg);
  std::vector<VertexId> sources = {3, 9, 3, 3, 21, 9};
  MultiSourceWorkspace ws;
  expect_lanes_match_scalar(csr, sources, 0, ws, /*record_via=*/true);
}

TEST(MultiSourceEquivalence, LateAndBeyondHorizonStarts) {
  Rng rng(11);
  const TemporalGraph eg = random_trace(rng, 50, 14, 150, /*isolated=*/2);
  const TemporalCsr csr(eg);
  MultiSourceWorkspace ws;
  std::vector<VertexId> sources;
  for (std::size_t l = 0; l < 24; ++l) {
    sources.push_back(static_cast<VertexId>((l * 7) % eg.vertex_count()));
  }
  for (const TimeUnit t_start : {TimeUnit{5}, TimeUnit{13},
                                 eg.horizon(),  // no unit ever scanned
                                 static_cast<TimeUnit>(eg.horizon() + 3)}) {
    expect_lanes_match_scalar(csr, sources, t_start, ws, /*record_via=*/true);
  }
}

TEST(MultiSourceEquivalence, RandomizedManySeeds) {
  for (const std::uint64_t seed : {29ULL, 31ULL, 37ULL}) {
    Rng rng(seed);
    const std::size_t n = 30 + rng.index(60);
    const TemporalGraph eg =
        random_trace(rng, n, static_cast<TimeUnit>(6 + rng.index(12)),
                     60 + rng.index(240), rng.index(5));
    const TemporalCsr csr(eg);
    MultiSourceWorkspace ws;
    const std::size_t lanes = 1 + rng.index(MultiSourceWorkspace::kMaxLanes);
    std::vector<VertexId> sources;
    for (std::size_t l = 0; l < lanes; ++l) {
      sources.push_back(static_cast<VertexId>(rng.index(n)));
    }
    expect_lanes_match_scalar(csr, sources,
                              static_cast<TimeUnit>(rng.index(4)), ws,
                              /*record_via=*/true);
  }
}

TEST(MultiSourceDelta, OverlayLanesMatchScalarAcrossCompaction) {
  constexpr std::size_t kN = 36;
  constexpr TimeUnit kHorizon = 12;
  Rng rng(61);
  // Canonical truth: the live contact set, mirrored into the delta.
  std::set<std::array<std::uint32_t, 3>> live;
  const auto key = [](VertexId u, VertexId v, TimeUnit t) {
    return std::array<std::uint32_t, 3>{std::min(u, v), std::max(u, v), t};
  };
  const auto rebuild = [&] {
    TemporalGraph eg(kN, kHorizon);
    for (const auto& c : live) eg.add_contact(c[0], c[1], c[2]);
    return eg;
  };
  for (int i = 0; i < 90; ++i) {
    const auto u = static_cast<VertexId>(rng.index(kN));
    const auto v = static_cast<VertexId>(rng.index(kN));
    if (u == v) continue;
    live.insert(key(u, v, static_cast<TimeUnit>(rng.index(kHorizon))));
  }
  DeltaTemporalCsr delta(rebuild());
  MultiSourceWorkspace ws;
  std::vector<VertexId> sources;
  for (std::size_t l = 0; l < kN; ++l) {
    sources.push_back(static_cast<VertexId>(l));
  }
  // Mutate the overlay, sweeping after each round against both the
  // delta itself and a fresh index of the truth; then force the
  // compaction boundary with a rebase and sweep again — the same
  // workspace must refresh its cached contact list each time.
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 25; ++i) {
      const auto u = static_cast<VertexId>(rng.index(kN));
      const auto v = static_cast<VertexId>(rng.index(kN));
      if (u == v) continue;
      const auto t = static_cast<TimeUnit>(rng.index(kHorizon));
      if (rng.bernoulli(0.3)) {
        live.erase(key(u, v, t));
        delta.remove_contact(u, v, t);
      } else {
        live.insert(key(u, v, t));
        delta.add_contact(u, v, t);
      }
    }
    expect_lanes_match_scalar(delta, sources, 0, ws, /*record_via=*/true);
    const TemporalCsr fresh(rebuild());
    expect_lanes_match_scalar(fresh, sources, 0, ws, /*record_via=*/true);
  }
  delta.rebase(rebuild());  // compaction boundary: state id must move
  expect_lanes_match_scalar(delta, sources, 0, ws, /*record_via=*/true);
}

TEST(MultiSourceWorkspaceTest, ContactCacheRefreshesAcrossIndexes) {
  Rng rng(77);
  const TemporalGraph a = random_trace(rng, 30, 8, 70, /*isolated=*/6);
  const TemporalGraph b = random_trace(rng, 30, 8, 70);
  const TemporalCsr csr_a(a);
  const TemporalCsr csr_b(b);
  MultiSourceWorkspace ws;
  std::vector<VertexId> sources = {0, 5, 11, 29};
  // Alternate indexes with one workspace: a stale cached has-contacts
  // list from the other index would corrupt the pending set.
  expect_lanes_match_scalar(csr_a, sources, 0, ws, /*record_via=*/false);
  expect_lanes_match_scalar(csr_b, sources, 0, ws, /*record_via=*/false);
  expect_lanes_match_scalar(csr_a, sources, 0, ws, /*record_via=*/true);
}

TEST(MultiSourceCallers, AllPairsKernelsThreadCountInvariant) {
  Rng rng(19);
  const TemporalGraph eg = random_trace(rng, 70, 12, 220, /*isolated=*/3);
  const auto close1 = temporal_closeness(eg, 1);
  const auto betw1 = temporal_betweenness(eg, 1);
  const auto cpl1 = characteristic_temporal_path_length(eg, 1);
  const auto flood1 = flooding_times(eg, 1);
  const auto dia1 = dynamic_diameter(eg, 1);
  const auto conn1 = is_time_connected(eg, 0, 1);
  const auto mat1 = temporal_distance_matrix(eg, 0, 1);
  for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    EXPECT_EQ(temporal_closeness(eg, threads), close1);
    EXPECT_EQ(temporal_betweenness(eg, threads), betw1);
    const auto cpl = characteristic_temporal_path_length(eg, threads);
    EXPECT_EQ(cpl.characteristic_length, cpl1.characteristic_length);
    EXPECT_EQ(cpl.reachable_fraction, cpl1.reachable_fraction);
    EXPECT_EQ(flooding_times(eg, threads), flood1);
    EXPECT_EQ(dynamic_diameter(eg, threads), dia1);
    EXPECT_EQ(is_time_connected(eg, 0, threads), conn1);
    EXPECT_EQ(temporal_distance_matrix(eg, 0, threads), mat1);
  }
}

TEST(MultiSourceCallers, MatchScalarReferenceLoops) {
  Rng rng(23);
  const TemporalGraph eg = random_trace(rng, 44, 10, 130, /*isolated=*/2);
  const std::size_t n = eg.vertex_count();
  const TemporalCsr csr(eg);
  TemporalWorkspace ws;

  // flooding_times / dynamic_diameter vs the scalar single-source API.
  const auto floods = flooding_times(eg, 1);
  ASSERT_EQ(floods.size(), n);
  TimeUnit worst = 0;
  for (std::size_t s = 0; s < n; ++s) {
    EXPECT_EQ(floods[s], flooding_time(eg, static_cast<VertexId>(s)))
        << "s=" << s;
    worst = std::max(worst, floods[s]);
  }
  EXPECT_EQ(dynamic_diameter(eg, 1), worst);

  // temporal_distance_matrix rows vs temporal_distances.
  const auto mat = temporal_distance_matrix(eg, 2, 1);
  for (std::size_t s = 0; s < n; ++s) {
    EXPECT_EQ(mat[s], temporal_distances(eg, static_cast<VertexId>(s), 2))
        << "s=" << s;
  }

  // closeness vs a serial scalar-kernel recomputation (identical float
  // summation order, so == is the right comparison).
  const auto close = temporal_closeness(eg, 1);
  for (std::size_t s = 0; s < n; ++s) {
    csr_earliest_arrival(csr, static_cast<VertexId>(s), 0, ws);
    double sum = 0.0;
    for (std::size_t v = 0; v < n; ++v) {
      const TimeUnit c = ws.arrival(static_cast<VertexId>(v));
      if (v == s || c == kNeverTime) continue;
      sum += 1.0 / (1.0 + static_cast<double>(c));
    }
    EXPECT_EQ(close[s], sum / static_cast<double>(n - 1)) << "s=" << s;
  }

  // is_time_connected vs exhaustive reached counts.
  for (const TimeUnit t : {TimeUnit{0}, TimeUnit{4}}) {
    bool all = true;
    for (std::size_t s = 0; s < n && all; ++s) {
      csr_earliest_arrival(csr, static_cast<VertexId>(s), t, ws);
      all = ws.reached_count() == n;
    }
    EXPECT_EQ(is_time_connected(eg, t, 1), all) << "t=" << t;
  }
}

TEST(MultiSourceCallers, EmptyAndTinyGraphs) {
  const TemporalGraph empty(0, 4);
  EXPECT_TRUE(flooding_times(empty, 1).empty());
  EXPECT_EQ(dynamic_diameter(empty, 1), 0u);
  EXPECT_TRUE(temporal_distance_matrix(empty, 0, 1).empty());
  EXPECT_TRUE(is_time_connected(empty, 0, 1));

  TemporalGraph one(1, 4);
  EXPECT_EQ(flooding_times(one, 1), std::vector<TimeUnit>{0});
  EXPECT_EQ(dynamic_diameter(one, 1), 0u);
  EXPECT_TRUE(is_time_connected(one, 0, 1));
  EXPECT_EQ(temporal_closeness(one, 1), std::vector<double>{0.0});
}

}  // namespace
}  // namespace structnet
