// Tests for bridges/articulation points and the k-hop-localized
// trimming rule.
#include <gtest/gtest.h>

#include <algorithm>

#include "algo/bridges.hpp"
#include "algo/components.hpp"
#include "core/generators.hpp"
#include "mobility/contact_trace.hpp"
#include "mobility/mobility_models.hpp"
#include "trimming/eg_trimming.hpp"

namespace structnet {
namespace {

TEST(Bridges, PathGraphAllBridges) {
  const Graph g = path_graph(6);
  const auto cut = find_cut_structure(g);
  EXPECT_EQ(cut.bridges.size(), 5u);
  // Interior vertices 1..4 are articulation points.
  EXPECT_EQ(cut.articulation_points,
            (std::vector<VertexId>{1, 2, 3, 4}));
}

TEST(Bridges, CycleHasNone) {
  const auto cut = find_cut_structure(cycle_graph(8));
  EXPECT_TRUE(cut.bridges.empty());
  EXPECT_TRUE(cut.articulation_points.empty());
}

TEST(Bridges, BarbellBridge) {
  // Two triangles joined by one edge: that edge is the only bridge; its
  // endpoints are the articulation points.
  Graph g(6);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(0, 2);
  g.add_edge(3, 4);
  g.add_edge(4, 5);
  g.add_edge(3, 5);
  const EdgeId bridge = g.add_edge(2, 3);
  const auto cut = find_cut_structure(g);
  EXPECT_EQ(cut.bridges, (std::vector<EdgeId>{bridge}));
  EXPECT_EQ(cut.articulation_points, (std::vector<VertexId>{2, 3}));
}

TEST(Bridges, MatchesRemovalOracleOnRandomGraphs) {
  // An edge is a bridge iff removing it increases the component count.
  Rng rng(1);
  for (int trial = 0; trial < 15; ++trial) {
    const Graph g = erdos_renyi(24, 0.09, rng);
    const auto base_components = component_count(g);
    const auto mask = bridge_mask(g);
    for (EdgeId e = 0; e < g.edge_count(); ++e) {
      Graph without(g.vertex_count());
      for (EdgeId f = 0; f < g.edge_count(); ++f) {
        if (f != e) without.add_edge(g.edge(f).u, g.edge(f).v);
      }
      const bool oracle = component_count(without) > base_components;
      EXPECT_EQ(mask[e], oracle) << "trial " << trial << " edge " << e;
    }
  }
}

TEST(Bridges, ArticulationMatchesRemovalOracle) {
  Rng rng(2);
  for (int trial = 0; trial < 10; ++trial) {
    const Graph g = erdos_renyi(20, 0.12, rng);
    const auto cut = find_cut_structure(g);
    for (VertexId v = 0; v < g.vertex_count(); ++v) {
      std::vector<bool> keep(g.vertex_count(), true);
      keep[v] = false;
      const Graph without = g.induced_subgraph(keep, nullptr);
      // Removing v splits its component iff v is an articulation point.
      // Compare component counts excluding the vertex itself.
      const auto before = component_count(g);
      const auto after = component_count(without);
      const bool isolated = g.degree(v) == 0;
      const bool oracle = !isolated && after > before;
      const bool reported =
          std::find(cut.articulation_points.begin(),
                    cut.articulation_points.end(),
                    v) != cut.articulation_points.end();
      EXPECT_EQ(reported, oracle) << "trial " << trial << " v " << v;
    }
  }
}

TEST(KhopTrimming, LargeHorizonMatchesGlobalRule) {
  Rng rng(3);
  for (int trial = 0; trial < 8; ++trial) {
    RandomWaypointParams p;
    p.nodes = 10;
    p.steps = 12;
    const auto eg = contacts_from_trajectory(random_waypoint(p, rng), 0.4);
    std::vector<double> prio(p.nodes);
    for (std::size_t v = 0; v < p.nodes; ++v) prio[v] = double(p.nodes - v);
    for (const auto& edge : eg.edges()) {
      EXPECT_EQ(
          can_ignore_neighbor_khop(eg, edge.u, edge.v, prio, 64),
          can_ignore_neighbor(eg, edge.u, edge.v, prio))
          << trial;
    }
  }
}

TEST(KhopTrimming, HorizonMonotone) {
  // More information never trims less: if the k-hop rule fires, every
  // larger horizon fires too.
  Rng rng(4);
  for (int trial = 0; trial < 8; ++trial) {
    RandomWaypointParams p;
    p.nodes = 10;
    p.steps = 12;
    const auto eg = contacts_from_trajectory(random_waypoint(p, rng), 0.4);
    std::vector<double> prio(p.nodes);
    for (std::size_t v = 0; v < p.nodes; ++v) prio[v] = double(p.nodes - v);
    for (const auto& edge : eg.edges()) {
      bool prev = can_ignore_neighbor_khop(eg, edge.u, edge.v, prio, 1);
      for (std::uint32_t k = 2; k <= 4; ++k) {
        const bool now = can_ignore_neighbor_khop(eg, edge.u, edge.v, prio, k);
        EXPECT_TRUE(!prev || now) << "trial " << trial << " k " << k;
        prev = now;
      }
    }
  }
}

TEST(KhopTrimming, TightHorizonMissesDistantReplacements) {
  // Replacement path uses relays 3 hops out: the 1-hop rule cannot see
  // it, the 3-hop rule can.
  TemporalGraph eg(6, 10);
  // Path through banned node 5: 0 -1-> 5 -8-> 1.
  eg.add_contact(0, 5, 1);
  eg.add_contact(5, 1, 8);
  // Replacement: 0 -2-> 2 -3-> 3 -4-> 4 -5-> 1 (relays 2,3,4).
  eg.add_contact(0, 2, 2);
  eg.add_contact(2, 3, 3);
  eg.add_contact(3, 4, 4);
  eg.add_contact(4, 1, 5);
  const std::vector<double> prio{6, 5, 4, 3, 2, 1};
  EXPECT_TRUE(can_ignore_neighbor(eg, 0, 5, prio));
  EXPECT_TRUE(can_ignore_neighbor_khop(eg, 0, 5, prio, 3));
  EXPECT_FALSE(can_ignore_neighbor_khop(eg, 0, 5, prio, 1));
}

}  // namespace
}  // namespace structnet
