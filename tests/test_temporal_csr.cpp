// Randomized equivalence suite: the TemporalCsr kernels against the
// legacy TemporalGraph-walking oracles, over random evolving graphs
// including t_start > 0, disconnected vertices, and edges whose label
// sets were emptied by remove_label. Also pins bit-identity of the
// converted parallel callers at 1/2/8 threads.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "parallel/parallel.hpp"
#include "sim/dtn_routing.hpp"
#include "temporal/journeys.hpp"
#include "temporal/temporal_centrality.hpp"
#include "temporal/smallworld_metrics.hpp"
#include "temporal/temporal_csr.hpp"
#include "temporal/temporal_delta.hpp"
#include "util/rng.hpp"

namespace structnet {
namespace {

struct EgParams {
  std::size_t n = 12;
  TimeUnit horizon = 10;
  std::size_t edges = 20;
  std::size_t labels_per_edge = 3;
  std::size_t isolated = 0;       // trailing vertices kept contact-free
  std::size_t emptied_edges = 0;  // edges whose labels are removed again
};

TemporalGraph random_eg(Rng& rng, const EgParams& p) {
  TemporalGraph eg(p.n, p.horizon);
  const std::size_t active = p.n > p.isolated ? p.n - p.isolated : 1;
  for (std::size_t i = 0; i < p.edges; ++i) {
    const auto u = static_cast<VertexId>(rng.index(active));
    auto v = static_cast<VertexId>(rng.index(active));
    if (u == v) v = static_cast<VertexId>((v + 1) % active);
    if (u == v) continue;
    for (std::size_t k = 0; k < p.labels_per_edge; ++k) {
      eg.add_contact(u, v, static_cast<TimeUnit>(rng.index(p.horizon)));
    }
  }
  // Empty out some edges via remove_label: the edge records stay (ids
  // stable) but contribute no contacts — the CSR build must skip them.
  std::size_t emptied = 0;
  for (std::size_t e = 0; e < eg.edge_count() && emptied < p.emptied_edges;
       e += 2, ++emptied) {
    const auto edge = eg.edge(static_cast<EdgeId>(e));
    const std::vector<TimeUnit> labels = edge.labels;
    for (TimeUnit t : labels) eg.remove_label(edge.u, edge.v, t);
    EXPECT_TRUE(eg.edge(static_cast<EdgeId>(e)).labels.empty());
  }
  return eg;
}

void expect_ea_equal(const TemporalGraph& eg, const TemporalCsr& csr,
                     TemporalWorkspace& ws, VertexId source, TimeUnit t_start) {
  const EarliestArrival oracle = earliest_arrival(eg, source, t_start);
  csr_earliest_arrival(csr, source, t_start, ws);
  const EarliestArrival got = ws.to_earliest_arrival();
  ASSERT_EQ(got.completion.size(), oracle.completion.size());
  for (std::size_t v = 0; v < oracle.completion.size(); ++v) {
    EXPECT_EQ(got.completion[v], oracle.completion[v])
        << "completion mismatch source=" << source << " t_start=" << t_start
        << " v=" << v;
    EXPECT_EQ(got.via[v], oracle.via[v])
        << "via mismatch source=" << source << " t_start=" << t_start
        << " v=" << v;
  }
}

TEST(TemporalCsrBuild, LayoutMatchesGraph) {
  Rng rng(1);
  EgParams p;
  p.emptied_edges = 2;
  const TemporalGraph eg = random_eg(rng, p);
  const TemporalCsr csr(eg);
  EXPECT_EQ(csr.vertex_count(), eg.vertex_count());
  EXPECT_EQ(csr.edge_count(), eg.edge_count());
  EXPECT_EQ(csr.horizon(), eg.horizon());
  EXPECT_EQ(csr.contact_count(), eg.contacts().size());
  // Per-vertex contacts are time-sorted with edge id as tie-break.
  for (VertexId v = 0; v < eg.vertex_count(); ++v) {
    for (std::size_t i = csr.contacts_begin(v) + 1; i < csr.contacts_end(v);
         ++i) {
      const bool ordered =
          csr.contact_time(i - 1) < csr.contact_time(i) ||
          (csr.contact_time(i - 1) == csr.contact_time(i) &&
           csr.contact_edge(i - 1) < csr.contact_edge(i));
      EXPECT_TRUE(ordered) << "v=" << v << " i=" << i;
      EXPECT_TRUE(eg.has_contact(v, csr.contact_neighbor(i),
                                 csr.contact_time(i)));
    }
  }
  // The global stream per unit equals the legacy bucket contents (edge
  // id ascending; one entry per (edge, label)).
  std::size_t total = 0;
  for (TimeUnit t = 0; t < eg.horizon(); ++t) {
    const auto unit = csr.edges_at(t);
    total += unit.size();
    for (std::size_t i = 0; i < unit.size(); ++i) {
      if (i > 0) {
        EXPECT_LT(unit[i - 1], unit[i]);
      }
      const auto& labels = eg.edge(unit[i]).labels;
      EXPECT_TRUE(std::binary_search(labels.begin(), labels.end(), t));
    }
  }
  EXPECT_EQ(total, csr.contact_count());
}

TEST(TemporalCsrEarliestArrival, MatchesOracleOnRandomGraphs) {
  Rng rng(7);
  for (int round = 0; round < 30; ++round) {
    EgParams p;
    p.n = 6 + rng.index(10);
    p.horizon = 4 + static_cast<TimeUnit>(rng.index(10));
    p.edges = 5 + rng.index(30);
    p.labels_per_edge = 1 + rng.index(4);
    p.isolated = rng.index(3);
    p.emptied_edges = rng.index(3);
    const TemporalGraph eg = random_eg(rng, p);
    const TemporalCsr csr(eg);
    TemporalWorkspace ws;  // reused across every sweep of the round
    const TimeUnit starts[] = {0, 2, static_cast<TimeUnit>(p.horizon - 1),
                               static_cast<TimeUnit>(p.horizon + 2)};
    for (VertexId s = 0; s < eg.vertex_count(); ++s) {
      for (TimeUnit t_start : starts) {
        expect_ea_equal(eg, csr, ws, s, t_start);
      }
    }
  }
}

TEST(TemporalCsrEarliestArrival, DenseSameUnitClosureMatchesOracle) {
  // Many contacts on few time units stress the within-unit fixed-point
  // ordering (chains forming inside one snapshot).
  Rng rng(11);
  for (int round = 0; round < 20; ++round) {
    EgParams p;
    p.n = 5 + rng.index(7);
    p.horizon = 2 + static_cast<TimeUnit>(rng.index(3));
    p.edges = 15 + rng.index(25);
    p.labels_per_edge = 1 + rng.index(2);
    const TemporalGraph eg = random_eg(rng, p);
    const TemporalCsr csr(eg);
    TemporalWorkspace ws;
    for (VertexId s = 0; s < eg.vertex_count(); ++s) {
      for (TimeUnit t_start = 0; t_start <= p.horizon; ++t_start) {
        expect_ea_equal(eg, csr, ws, s, t_start);
      }
    }
  }
}

TEST(TemporalCsrMinimumHop, MatchesLegacyJourneyExactly) {
  Rng rng(23);
  for (int round = 0; round < 30; ++round) {
    EgParams p;
    p.n = 5 + rng.index(9);
    p.horizon = 3 + static_cast<TimeUnit>(rng.index(8));
    p.edges = 4 + rng.index(25);
    p.labels_per_edge = 1 + rng.index(3);
    p.isolated = rng.index(2);
    p.emptied_edges = rng.index(2);
    const TemporalGraph eg = random_eg(rng, p);
    const TemporalCsr csr(eg);
    TemporalWorkspace ws;
    for (VertexId s = 0; s < eg.vertex_count(); ++s) {
      for (VertexId d = 0; d < eg.vertex_count(); ++d) {
        for (TimeUnit t_start : {TimeUnit{0}, TimeUnit{2}}) {
          const auto want = legacy::minimum_hop_journey(eg, s, d, t_start);
          const auto got = csr_minimum_hop_journey(csr, s, d, t_start, ws);
          ASSERT_EQ(got.has_value(), want.has_value())
              << "s=" << s << " d=" << d << " t_start=" << t_start;
          if (got) {
            // Same hops, not merely the same hop count.
            EXPECT_EQ(*got, *want)
                << "s=" << s << " d=" << d << " t_start=" << t_start;
            EXPECT_TRUE(got->valid_for(eg));
          }
        }
      }
    }
  }
}

TEST(TemporalCsrFastest, MatchesLegacySpanAndValidity) {
  Rng rng(31);
  for (int round = 0; round < 30; ++round) {
    EgParams p;
    p.n = 5 + rng.index(8);
    p.horizon = 4 + static_cast<TimeUnit>(rng.index(8));
    p.edges = 5 + rng.index(22);
    p.labels_per_edge = 1 + rng.index(3);
    p.isolated = rng.index(2);
    p.emptied_edges = rng.index(2);
    const TemporalGraph eg = random_eg(rng, p);
    for (VertexId s = 0; s < eg.vertex_count(); ++s) {
      for (VertexId d = 0; d < eg.vertex_count(); ++d) {
        for (TimeUnit t_start : {TimeUnit{0}, TimeUnit{3}}) {
          const auto want = legacy::fastest_journey(eg, s, d, t_start);
          const auto got = fastest_journey(eg, s, d, t_start);
          ASSERT_EQ(got.has_value(), want.has_value())
              << "s=" << s << " d=" << d << " t_start=" << t_start;
          if (got) {
            // The fastest span is unique even when the realizing journey
            // is not; the journey must still be a real one.
            EXPECT_EQ(got->span(), want->span())
                << "s=" << s << " d=" << d << " t_start=" << t_start;
            EXPECT_TRUE(got->valid_for(eg));
            if (!got->empty()) {
              EXPECT_GE(got->departure(), t_start);
            }
          }
        }
      }
    }
  }
}

TEST(TemporalCsrApi, ConvertedJourneyApiMatchesOracleFormulas) {
  Rng rng(43);
  for (int round = 0; round < 10; ++round) {
    EgParams p;
    p.n = 6 + rng.index(8);
    p.horizon = 4 + static_cast<TimeUnit>(rng.index(8));
    p.edges = 6 + rng.index(20);
    p.isolated = rng.index(2);
    const TemporalGraph eg = random_eg(rng, p);
    const std::size_t n = eg.vertex_count();

    // temporal_distances == oracle completions.
    for (VertexId s = 0; s < n; ++s) {
      EXPECT_EQ(temporal_distances(eg, s, 1),
                earliest_arrival(eg, s, 1).completion);
    }
    // flooding_time / dynamic_diameter from oracle completions.
    TimeUnit worst_all = 0;
    for (VertexId s = 0; s < n; ++s) {
      const auto ea = earliest_arrival(eg, s, 0);
      TimeUnit worst = 0;
      for (TimeUnit c : ea.completion) {
        worst = c == kNeverTime ? kNeverTime : std::max(worst, c);
        if (worst == kNeverTime) break;
      }
      EXPECT_EQ(flooding_time(eg, s), worst) << "s=" << s;
      worst_all = std::max(worst_all, worst);
    }
    EXPECT_EQ(dynamic_diameter(eg), worst_all);
    // is_connected_at / is_time_connected from oracle completions.
    const TimeUnit t = static_cast<TimeUnit>(rng.index(p.horizon));
    bool all = true;
    for (VertexId u = 0; u < n; ++u) {
      const auto ea = earliest_arrival(eg, u, t);
      for (VertexId v = 0; v < n; ++v) {
        const bool want = u == v || ea.completion[v] != kNeverTime;
        EXPECT_EQ(is_connected_at(eg, u, v, t), want)
            << "u=" << u << " v=" << v << " t=" << t;
        all = all && want;
      }
    }
    EXPECT_EQ(is_time_connected(eg, t), all);
    // earliest_completion_journey: same completion time as the oracle
    // and the exact oracle via chain (the CSR via trees are identical).
    for (VertexId s = 0; s < n; ++s) {
      const auto ea = earliest_arrival(eg, s, 0);
      for (VertexId d = 0; d < n; ++d) {
        const auto j = earliest_completion_journey(eg, s, d, 0);
        ASSERT_EQ(j.has_value(), ea.completion[d] != kNeverTime);
        if (j && s != d) {
          EXPECT_EQ(j->completion(), ea.completion[d]);
          EXPECT_TRUE(j->valid_for(eg));
          EXPECT_EQ(j->hops.empty() ? s : j->hops.back().to, d);
        }
      }
    }
  }
}

TEST(TemporalCsrThreads, ConvertedKernelsBitIdenticalAcrossThreadCounts) {
  Rng rng(57);
  EgParams p;
  p.n = 40;
  p.horizon = 12;
  p.edges = 140;
  p.labels_per_edge = 2;
  p.isolated = 1;
  const TemporalGraph eg = random_eg(rng, p);

  const auto close1 = temporal_closeness(eg, 1);
  const auto between1 = temporal_betweenness(eg, 1);
  const auto cpl1 = characteristic_temporal_path_length(eg, 1);
  const TimeUnit diam1 = dynamic_diameter(eg, 1);
  const bool conn1 = is_time_connected(eg, 0, 1);
  for (std::size_t threads : {2u, 8u}) {
    EXPECT_EQ(temporal_closeness(eg, threads), close1) << threads;
    EXPECT_EQ(temporal_betweenness(eg, threads), between1) << threads;
    const auto cpl = characteristic_temporal_path_length(eg, threads);
    EXPECT_EQ(cpl.characteristic_length, cpl1.characteristic_length);
    EXPECT_EQ(cpl.reachable_fraction, cpl1.reachable_fraction);
    EXPECT_EQ(dynamic_diameter(eg, threads), diam1) << threads;
    EXPECT_EQ(is_time_connected(eg, 0, threads), conn1) << threads;
  }
}

TEST(TemporalCsrDtn, RoutingMatchesGraphOverloadAndEaOracle) {
  Rng rng(71);
  for (int round = 0; round < 8; ++round) {
    EgParams p;
    p.n = 8 + rng.index(8);
    p.horizon = 6 + static_cast<TimeUnit>(rng.index(6));
    p.edges = 10 + rng.index(20);
    p.emptied_edges = rng.index(2);
    const TemporalGraph eg = random_eg(rng, p);
    const TemporalCsr csr(eg);
    const auto src = static_cast<VertexId>(rng.index(eg.vertex_count()));
    const auto dst = static_cast<VertexId>(rng.index(eg.vertex_count()));

    // Lossless epidemic delivery == earliest arrival (flooding is the
    // delay-optimal strategy, and instantaneous-transmission semantics
    // match journey semantics).
    const auto out = simulate_routing(csr, src, dst, 0, epidemic_strategy(),
                                      /*initial_copies=*/0);
    const auto ea = earliest_arrival(eg, src, 0);
    EXPECT_EQ(out.delivered, ea.completion[dst] != kNeverTime);
    if (out.delivered && src != dst) {
      EXPECT_EQ(out.delivery_time, ea.completion[dst]);
    }

    // Lossy runs: the CSR overload replays the exact contact order, so
    // the RNG draw sequence — and the outcome — is bit-identical.
    SimulationFaults faults;
    faults.loss_probability = 0.35;
    faults.loss_seed = 99 + round;
    const auto lossy_graph = simulate_routing(eg, src, dst, 1,
                                              epidemic_strategy(), 0, faults);
    const auto lossy_csr = simulate_routing(csr, src, dst, 1,
                                            epidemic_strategy(), 0, faults);
    EXPECT_EQ(lossy_graph.delivered, lossy_csr.delivered);
    EXPECT_EQ(lossy_graph.delivery_time, lossy_csr.delivery_time);
    EXPECT_EQ(lossy_graph.hops, lossy_csr.hops);
    EXPECT_EQ(lossy_graph.copies, lossy_csr.copies);
    EXPECT_EQ(lossy_graph.transmissions, lossy_csr.transmissions);
  }
}

TEST(TemporalCsrDtn, TrialsBitIdenticalAcrossThreadCounts) {
  Rng rng(83);
  EgParams p;
  p.n = 14;
  p.horizon = 10;
  p.edges = 30;
  const TemporalGraph eg = random_eg(rng, p);
  SimulationFaults faults;
  faults.loss_probability = 0.3;
  faults.loss_seed = 5;
  const auto base = simulate_routing_trials(eg, 0, 5, 0, epidemic_strategy(),
                                            0, faults, 24, 1);
  for (std::size_t threads : {2u, 8u}) {
    const auto got = simulate_routing_trials(eg, 0, 5, 0, epidemic_strategy(),
                                             0, faults, 24, threads);
    ASSERT_EQ(got.outcomes.size(), base.outcomes.size());
    for (std::size_t i = 0; i < base.outcomes.size(); ++i) {
      EXPECT_EQ(got.outcomes[i].delivered, base.outcomes[i].delivered);
      EXPECT_EQ(got.outcomes[i].delivery_time, base.outcomes[i].delivery_time);
      EXPECT_EQ(got.outcomes[i].transmissions,
                base.outcomes[i].transmissions);
    }
    EXPECT_EQ(got.delivery_ratio, base.delivery_ratio);
    EXPECT_EQ(got.mean_delivery_time, base.mean_delivery_time);
  }
}

// ---- DeltaTemporalCsr: delta overlay vs fresh rebuild ----

// Merged base+delta iteration must reproduce a fresh TemporalCsr's
// layout exactly: same per-unit edge streams (same order), same unit
// sizes, same per-vertex contact-bearing flags, same live labels.
void expect_delta_layout_equal(const TemporalGraph& eg,
                               const DeltaTemporalCsr& delta) {
  const TemporalCsr fresh(eg);
  ASSERT_EQ(delta.vertex_count(), fresh.vertex_count());
  ASSERT_EQ(delta.edge_count(), fresh.edge_count());
  ASSERT_EQ(delta.contact_count(), fresh.contact_count());
  for (TimeUnit t = 0; t < eg.horizon(); ++t) {
    const auto want = fresh.edges_at(t);
    std::vector<EdgeId> got;
    delta.for_each_edge_at(t, [&](EdgeId e) {
      got.push_back(e);
      return true;
    });
    ASSERT_EQ(got.size(), want.size()) << "t=" << t;
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i], want[i]) << "t=" << t << " i=" << i;
    }
    EXPECT_EQ(delta.unit_size(t), want.size()) << "t=" << t;
  }
  for (VertexId v = 0; v < fresh.vertex_count(); ++v) {
    EXPECT_EQ(delta.has_contacts(v), fresh.has_contacts(v)) << "v=" << v;
  }
  for (EdgeId e = 0; e < fresh.edge_count(); ++e) {
    for (TimeUnit t = 0; t <= eg.horizon(); ++t) {
      EXPECT_EQ(delta.first_label_at(e, t), fresh.first_label_at(e, t))
          << "e=" << e << " t=" << t;
    }
  }
}

// All three kernels on the delta overlay vs a fresh rebuild, including
// via hops and journey hops (bit-identity, not just values).
void expect_delta_kernels_equal(const TemporalGraph& eg,
                                const DeltaTemporalCsr& delta,
                                TemporalWorkspace& wsa, TemporalWorkspace& wsb,
                                VertexId source, TimeUnit t_start, Rng& rng) {
  const TemporalCsr fresh(eg);
  csr_earliest_arrival(fresh, source, t_start, wsa);
  csr_earliest_arrival(delta, source, t_start, wsb);
  for (VertexId v = 0; v < eg.vertex_count(); ++v) {
    ASSERT_EQ(wsb.arrival(v), wsa.arrival(v))
        << "s=" << source << " t_start=" << t_start << " v=" << v;
    ASSERT_EQ(wsb.via(v), wsa.via(v))
        << "s=" << source << " t_start=" << t_start << " v=" << v;
  }
  for (int pick = 0; pick < 4; ++pick) {
    auto target = static_cast<VertexId>(rng.index(eg.vertex_count()));
    if (target == source) {
      target = static_cast<VertexId>((target + 1) % eg.vertex_count());
    }
    if (target == source) continue;
    ASSERT_EQ(csr_fastest_departure(delta, source, target, t_start, wsb),
              csr_fastest_departure(fresh, source, target, t_start, wsa))
        << "fastest s=" << source << " tgt=" << target;
    const auto ja = csr_minimum_hop_journey(fresh, source, target, t_start,
                                            wsa);
    const auto jb = csr_minimum_hop_journey(delta, source, target, t_start,
                                            wsb);
    ASSERT_EQ(jb.has_value(), ja.has_value())
        << "minhop s=" << source << " tgt=" << target;
    if (ja) ASSERT_EQ(jb->hops, ja->hops) << "minhop s=" << source;
  }
}

TEST(TemporalDeltaChurn, MixedEventsBitIdenticalToFreshRebuild) {
  // ~1k mixed add_contact / remove_label events folded into the delta
  // while the same mutations run on the TemporalGraph; the overlay must
  // stay bit-identical to a fresh rebuild after every event (sampled
  // kernels; periodic full layout + all-sources sweeps), across forced
  // compaction boundaries and with t_start > 0.
  Rng rng(113);
  EgParams p;
  p.n = 18;
  p.horizon = 12;
  p.edges = 30;
  p.labels_per_edge = 2;
  p.emptied_edges = 2;
  TemporalGraph eg = random_eg(rng, p);
  DeltaTemporalCsr delta(eg);
  TemporalWorkspace wsa, wsb;

  std::size_t compactions = 0, accepted = 0;
  for (int step = 0; step < 1000; ++step) {
    const auto u = static_cast<VertexId>(rng.index(p.n));
    auto v = static_cast<VertexId>(rng.index(p.n));
    if (u == v) v = static_cast<VertexId>((v + 1) % p.n);
    const auto t = static_cast<TimeUnit>(rng.index(p.horizon));
    if (rng.index(10) < 7) {
      const bool expect_new = !eg.has_contact(u, v, t);
      eg.add_contact(u, v, t);
      EXPECT_EQ(delta.add_contact(u, v, t), expect_new) << "step " << step;
      accepted += expect_new;
    } else {
      const bool removed = eg.remove_label(u, v, t);
      EXPECT_EQ(delta.remove_contact(u, v, t), removed) << "step " << step;
      accepted += removed;
    }
    // Aggressive compaction policy so the suite crosses many
    // compaction boundaries (delta drained back into the base).
    if (delta.needs_compaction(0.02, 8)) {
      delta.rebase(eg);
      ++compactions;
      EXPECT_TRUE(delta.delta_empty());
    }
    if (step % 20 == 0) {
      const auto s = static_cast<VertexId>(rng.index(p.n));
      const auto t0 = static_cast<TimeUnit>(rng.index(4));
      expect_delta_kernels_equal(eg, delta, wsa, wsb, s, t0, rng);
    }
    if (step % 250 == 249) {
      expect_delta_layout_equal(eg, delta);
      for (VertexId s = 0; s < eg.vertex_count(); ++s) {
        expect_delta_kernels_equal(eg, delta, wsa, wsb, s, 0, rng);
      }
    }
  }
  EXPECT_GT(accepted, 400u);
  EXPECT_GT(compactions, 2u);
  expect_delta_layout_equal(eg, delta);
}

TEST(TemporalDeltaChurn, ResurrectionAndDuplicateSemantics) {
  TemporalGraph eg(4, 6);
  eg.add_contact(0, 1, 2);
  eg.add_contact(1, 2, 3);
  DeltaTemporalCsr delta(eg);

  // Every op is mirrored into the graph so the final fresh rebuild
  // sees the same history (incl. edge records left behind by drained
  // labels — both sides keep them for id stability).
  // Duplicate of a live base contact is rejected, like the graph.
  EXPECT_FALSE(delta.add_contact(0, 1, 2));
  EXPECT_TRUE(delta.delta_empty());
  // Tombstone a base contact, then resurrect it: delta drains to zero.
  EXPECT_TRUE(delta.remove_contact(0, 1, 2));
  eg.remove_label(0, 1, 2);
  EXPECT_EQ(delta.delta_size(), 1u);
  EXPECT_FALSE(delta.remove_contact(0, 1, 2));  // already dead
  EXPECT_TRUE(delta.add_contact(0, 1, 2));      // resurrect
  eg.add_contact(0, 1, 2);
  EXPECT_TRUE(delta.delta_empty());
  // Delta-added contact: duplicate rejected, removal erases outright.
  EXPECT_TRUE(delta.add_contact(2, 3, 1));
  eg.add_contact(2, 3, 1);
  EXPECT_FALSE(delta.add_contact(3, 2, 1));
  EXPECT_EQ(delta.delta_size(), 1u);
  EXPECT_TRUE(delta.remove_contact(2, 3, 1));
  eg.remove_label(2, 3, 1);
  EXPECT_TRUE(delta.delta_empty());
  // Removing a contact that never existed fails on both paths.
  EXPECT_FALSE(delta.remove_contact(0, 3, 4));
  EXPECT_FALSE(delta.remove_contact(0, 1, 5));

  expect_delta_layout_equal(eg, delta);
}

TEST(TemporalDeltaChurn, AllSourcesBitIdenticalAt128Threads) {
  // After a churn burst, all-sources earliest arrival over the delta
  // overlay must be bit-identical to the fresh rebuild at 1, 2, and 8
  // threads (per-worker workspaces, fixed shard boundaries).
  Rng rng(131);
  EgParams p;
  p.n = 40;
  p.horizon = 14;
  p.edges = 90;
  p.labels_per_edge = 2;
  TemporalGraph eg = random_eg(rng, p);
  DeltaTemporalCsr delta(eg);
  for (int step = 0; step < 300; ++step) {
    const auto u = static_cast<VertexId>(rng.index(p.n));
    auto v = static_cast<VertexId>(rng.index(p.n));
    if (u == v) v = static_cast<VertexId>((v + 1) % p.n);
    const auto t = static_cast<TimeUnit>(rng.index(p.horizon));
    if (rng.index(10) < 7) {
      eg.add_contact(u, v, t);
      delta.add_contact(u, v, t);
    } else {
      eg.remove_label(u, v, t);
      delta.remove_contact(u, v, t);
    }
  }

  const TemporalCsr fresh(eg);
  const std::size_t n = eg.vertex_count();
  std::vector<TimeUnit> want(n * n, kNeverTime);
  {
    TemporalWorkspace ws;
    for (VertexId s = 0; s < n; ++s) {
      csr_earliest_arrival(fresh, s, 1, ws);
      for (VertexId v = 0; v < n; ++v) want[s * n + v] = ws.arrival(v);
    }
  }
  for (const std::size_t threads : {1u, 2u, 8u}) {
    std::vector<TemporalWorkspace> pool(resolve_threads(threads));
    std::vector<TimeUnit> got(n * n, kNeverTime);
    parallel_for_shards(
        0, n, 4, threads,
        [&](std::size_t, std::size_t lo, std::size_t hi, std::size_t worker) {
          TemporalWorkspace& ws = pool[worker];
          for (std::size_t s = lo; s < hi; ++s) {
            csr_earliest_arrival(delta, static_cast<VertexId>(s), 1, ws);
            for (VertexId v = 0; v < n; ++v) {
              got[s * n + v] = ws.arrival(v);
            }
          }
        });
    EXPECT_EQ(got, want) << "threads=" << threads;
  }
}

TEST(TemporalCsrWorkspace, ReusedAcrossGraphShapes) {
  // One workspace driven across graphs of different sizes must rebind
  // cleanly (stale stamps from the old shape can never leak).
  Rng rng(91);
  TemporalWorkspace ws;
  for (int round = 0; round < 6; ++round) {
    EgParams p;
    p.n = 4 + rng.index(20);
    p.horizon = 3 + static_cast<TimeUnit>(rng.index(9));
    p.edges = 4 + rng.index(30);
    const TemporalGraph eg = random_eg(rng, p);
    const TemporalCsr csr(eg);
    for (VertexId s = 0; s < eg.vertex_count(); ++s) {
      expect_ea_equal(eg, csr, ws, s, 0);
    }
  }
}

}  // namespace
}  // namespace structnet
