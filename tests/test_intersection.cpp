// Tests for src/intersection: interval graphs (Fig. 1), interval
// hypergraphs, sessions, and unit-disk facts from Sec. II-A.
#include <gtest/gtest.h>

#include <algorithm>

#include "algo/chordal.hpp"
#include "core/generators.hpp"
#include "intersection/interval_graph.hpp"
#include "intersection/interval_hypergraph.hpp"
#include "intersection/sessions.hpp"
#include "intersection/unit_disk.hpp"

namespace structnet {
namespace {

// Fig. 1 (a): four users A..D online once each; A, C, D overlap at one
// moment, B overlaps only C.
std::vector<Interval> fig1_intervals() {
  return {
      Interval{0.0, 4.0},   // A
      Interval{7.0, 9.0},   // B
      Interval{3.0, 8.0},   // C
      Interval{2.0, 5.0},   // D
  };
}

TEST(IntervalGraph, Fig1Edges) {
  const auto iv = fig1_intervals();
  const Graph g = interval_graph(iv);
  // A-C, A-D, C-D (triple overlap) and B-C.
  EXPECT_TRUE(g.has_edge(0, 2));
  EXPECT_TRUE(g.has_edge(0, 3));
  EXPECT_TRUE(g.has_edge(2, 3));
  EXPECT_TRUE(g.has_edge(1, 2));
  EXPECT_FALSE(g.has_edge(0, 1));
  EXPECT_FALSE(g.has_edge(1, 3));
  EXPECT_EQ(g.edge_count(), 4u);
}

TEST(IntervalGraph, TouchingEndpointsIntersect) {
  const std::vector<Interval> iv{{0.0, 1.0}, {1.0, 2.0}};
  EXPECT_TRUE(interval_graph(iv).has_edge(0, 1));
}

TEST(IntervalGraph, DisjointIntervalsNoEdge) {
  const std::vector<Interval> iv{{0.0, 1.0}, {1.5, 2.0}};
  EXPECT_EQ(interval_graph(iv).edge_count(), 0u);
}

TEST(IntervalGraph, EveryIntervalGraphIsChordal) {
  // Sec. II-A: "if G is an interval graph, it must be a chordal graph."
  Rng rng(1);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<Interval> iv;
    for (int i = 0; i < 30; ++i) {
      const double s = rng.uniform(0.0, 100.0);
      iv.push_back(Interval{s, s + rng.uniform(0.0, 20.0)});
    }
    EXPECT_TRUE(is_chordal(interval_graph(iv))) << "trial " << trial;
  }
}

TEST(IntervalGraph, RecognizerAcceptsGeneratedIntervalGraphs) {
  Rng rng(2);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<Interval> iv;
    for (int i = 0; i < 10; ++i) {
      const double s = rng.uniform(0.0, 30.0);
      iv.push_back(Interval{s, s + rng.uniform(0.0, 8.0)});
    }
    const auto verdict = is_interval_graph(interval_graph(iv));
    ASSERT_TRUE(verdict.has_value());
    EXPECT_TRUE(*verdict) << "trial " << trial;
  }
}

TEST(IntervalGraph, RepresentationValidator) {
  const auto iv = fig1_intervals();
  const Graph g = interval_graph(iv);
  EXPECT_TRUE(is_interval_representation(g, iv));
  Graph wrong = g;
  wrong.add_edge(0, 1);
  EXPECT_FALSE(is_interval_representation(wrong, iv));
}

TEST(IntervalGraph, RepresentationFromCliqueOrderRoundTrip) {
  const auto iv = fig1_intervals();
  const Graph g = interval_graph(iv);
  // Maximal cliques of the Fig. 1 graph: {A,C,D} and {B,C}; the order
  // ({A,C,D}, {B,C}) is consecutive.
  const std::vector<std::vector<VertexId>> cliques{{0, 2, 3}, {1, 2}};
  const auto rep = representation_from_clique_order(g, cliques);
  EXPECT_TRUE(is_interval_representation(g, rep));
}

TEST(MultipleIntervalGraph, UserWithTwoSessions) {
  // User 0 online twice; the second session overlaps user 1.
  std::vector<std::vector<Interval>> sets{
      {{0.0, 1.0}, {5.0, 6.0}},
      {{5.5, 7.0}},
      {{2.0, 3.0}},
  };
  const Graph g = multiple_interval_graph(sets);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_FALSE(g.has_edge(0, 2));
  EXPECT_FALSE(g.has_edge(1, 2));
}

TEST(MultipleIntervalGraph, CanRealizeC4) {
  // Multiple-interval graphs escape chordality: realize C4, which no
  // single-interval family can (Sec. II-A's "time is linear" argument).
  std::vector<std::vector<Interval>> sets{
      {{0.0, 1.0}, {6.0, 7.0}},   // 0 meets 1 and 3
      {{1.0, 2.0}},               // 1 meets 0 and 2
      {{2.0, 3.0}, {4.0, 5.0}},   // 2 meets 1 and 3
      {{4.5, 6.5}},               // 3 meets 2 and 0
  };
  const Graph g = multiple_interval_graph(sets);
  EXPECT_EQ(g.edge_count(), 4u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 2));
  EXPECT_TRUE(g.has_edge(2, 3));
  EXPECT_TRUE(g.has_edge(3, 0));
  EXPECT_FALSE(is_chordal(g));
}

TEST(IntervalHypergraph, Fig1TripleHyperedge) {
  // Sec. II-A: A, C, D intersect at a moment -> a hyperedge {A, C, D}
  // should appear alongside {B, C}.
  const auto iv = fig1_intervals();
  const auto hyper = interval_hyperedges(iv);
  const std::vector<VertexId> acd{0, 2, 3};
  const std::vector<VertexId> bc{1, 2};
  EXPECT_NE(std::find(hyper.begin(), hyper.end(), acd), hyper.end());
  EXPECT_NE(std::find(hyper.begin(), hyper.end(), bc), hyper.end());
}

TEST(IntervalHypergraph, HyperedgesAreMaximalCliques) {
  // Helly property: maximal hyperedges == maximal cliques of the
  // interval graph.
  Rng rng(3);
  std::vector<Interval> iv;
  for (int i = 0; i < 14; ++i) {
    const double s = rng.uniform(0.0, 20.0);
    iv.push_back(Interval{s, s + rng.uniform(0.5, 6.0)});
  }
  const auto hyper = interval_hyperedges(iv);
  auto cliques = chordal_maximal_cliques(interval_graph(iv));
  auto sorted_h = hyper;
  std::sort(sorted_h.begin(), sorted_h.end());
  std::sort(cliques.begin(), cliques.end());
  EXPECT_EQ(sorted_h, cliques);
}

TEST(IntervalHypergraph, CardinalityDistribution) {
  const auto iv = fig1_intervals();
  const auto hyper = interval_hyperedges(iv);
  const auto hist = hyperedge_cardinality_distribution(hyper);
  EXPECT_EQ(hist.count_of(3), 1u);  // {A,C,D}
  EXPECT_EQ(hist.count_of(2), 1u);  // {B,C}
}

TEST(IntervalHypergraph, SingletonForIsolatedInterval) {
  const std::vector<Interval> iv{{0.0, 1.0}, {5.0, 6.0}, {5.5, 7.0}};
  const auto hyper = interval_hyperedges(iv);
  const std::vector<VertexId> solo{0};
  EXPECT_NE(std::find(hyper.begin(), hyper.end(), solo), hyper.end());
}

TEST(IntervalHypergraph, ActivityProfileCountsActive) {
  const std::vector<Interval> iv{{0.0, 10.0}, {5.0, 10.0}};
  const auto profile = activity_profile(iv, 11);
  EXPECT_EQ(profile.front(), 1u);
  EXPECT_EQ(profile.back(), 2u);
}

TEST(Sessions, GeneratorRespectsModel) {
  Rng rng(4);
  SessionModel model;
  model.users = 40;
  model.sessions_per_user = 3;
  model.horizon = 100.0;
  model.mean_duration = 5.0;
  const auto sessions = generate_sessions(model, rng);
  ASSERT_EQ(sessions.size(), 40u);
  for (const auto& set : sessions) {
    ASSERT_EQ(set.size(), 3u);
    for (const auto& iv : set) {
      EXPECT_GE(iv.start, 0.0);
      EXPECT_LT(iv.start, 100.0);
      EXPECT_GE(iv.end, iv.start);
    }
  }
}

TEST(Sessions, FlattenTracksOwners) {
  Rng rng(5);
  SessionModel model;
  model.users = 5;
  model.sessions_per_user = 2;
  const auto sessions = generate_sessions(model, rng);
  std::vector<VertexId> owner;
  const auto flat = flatten_sessions(sessions, &owner);
  ASSERT_EQ(flat.size(), 10u);
  ASSERT_EQ(owner.size(), 10u);
  EXPECT_EQ(owner[0], 0u);
  EXPECT_EQ(owner[9], 4u);
}

TEST(UnitDisk, RealizationValidator) {
  Rng rng(6);
  std::vector<Point2D> pts;
  const Graph g = random_geometric(40, 0.25, rng, &pts);
  EXPECT_TRUE(is_unit_disk_realization(g, pts, 0.25));
  Graph wrong = g;
  // Adding any non-edge breaks realization (if one exists).
  bool added = false;
  for (VertexId u = 0; u < 40 && !added; ++u) {
    for (VertexId v = u + 1; v < 40 && !added; ++v) {
      if (!wrong.has_edge(u, v)) {
        wrong.add_edge(u, v);
        added = true;
      }
    }
  }
  ASSERT_TRUE(added);
  EXPECT_FALSE(is_unit_disk_realization(wrong, pts, 0.25));
}

TEST(UnitDisk, StarWithSixLeavesIsNotAUnitDiskGraph) {
  // Sec. II-A's non-example. Exhaustively refuting all realizations is
  // analytic, not computational; here we certify the *geometric core* of
  // the argument: in any UDG, no vertex has six mutually-independent
  // neighbors.
  Rng rng(7);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<Point2D> pts;
    const Graph g = random_geometric(60, 0.3, rng, &pts);
    EXPECT_LE(max_independent_neighbors(g), 5u) << "trial " << trial;
  }
}

TEST(UnitDisk, StarGraphItselfReportsSixIndependentLeaves) {
  // ... while K_{1,6} would need six: the contradiction in one line.
  EXPECT_EQ(max_independent_neighbors(star_graph(6)), 6u);
}

}  // namespace
}  // namespace structnet
