// Tests for incremental safety-level maintenance under fault churn and
// the max-flow phase counter (height-adjustment rounds).
#include <gtest/gtest.h>

#include "algo/maxflow.hpp"
#include "labeling/safety_levels.hpp"
#include "util/rng.hpp"

namespace structnet {
namespace {

TEST(DynamicSafety, IncrementalMatchesFreshRecompute) {
  Rng rng(1);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t dims = 5;
    SafetyLevelCube incremental(dims, {});
    std::vector<std::size_t> faults;
    for (auto f : rng.sample_without_replacement(1u << dims, 6)) {
      faults.push_back(f);
    }
    for (std::size_t i = 0; i < faults.size(); ++i) {
      incremental.add_fault(faults[i]);
      const SafetyLevelCube fresh(
          dims, std::vector<std::size_t>(faults.begin(),
                                         faults.begin() + i + 1));
      for (std::size_t v = 0; v < incremental.node_count(); ++v) {
        ASSERT_EQ(incremental.level(v), fresh.level(v))
            << "trial " << trial << " after fault " << i << " node " << v;
      }
    }
  }
}

TEST(DynamicSafety, AddFaultIdempotent) {
  SafetyLevelCube cube(4, {3});
  EXPECT_EQ(cube.add_fault(3), 0u);
}

TEST(DynamicSafety, ChangeCountIsLocal) {
  // A single fault in a big healthy cube changes the faulty node plus a
  // bounded neighborhood, not the whole cube.
  SafetyLevelCube cube(8, {});
  const auto changed = cube.add_fault(0);
  EXPECT_GE(changed, 1u);
  EXPECT_LT(changed, cube.node_count() / 2);
}

TEST(DynamicSafety, LevelsOnlyDecreaseUnderFaults) {
  Rng rng(2);
  SafetyLevelCube cube(5, {});
  std::vector<std::uint32_t> prev(cube.node_count());
  for (std::size_t v = 0; v < cube.node_count(); ++v) prev[v] = cube.level(v);
  for (auto f : rng.sample_without_replacement(32, 8)) {
    cube.add_fault(f);
    for (std::size_t v = 0; v < cube.node_count(); ++v) {
      EXPECT_LE(cube.level(v), prev[v]) << "node " << v;
      prev[v] = cube.level(v);
    }
  }
}

TEST(MaxFlowPhases, PhaseCountsReportedAndBounded) {
  Rng rng(3);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t n = 6 + rng.index(10);
    FlowNetwork net(n);
    for (VertexId u = 0; u < n; ++u) {
      for (VertexId v = 0; v < n; ++v) {
        if (u != v && rng.bernoulli(0.3)) {
          net.add_arc(u, v, static_cast<std::int64_t>(rng.uniform_u64(1, 8)));
        }
      }
    }
    const auto flow = net.max_flow_dinic(0, static_cast<VertexId>(n - 1));
    const auto dinic_phases = net.last_phase_count();
    // Dinic/MPM phase bound: at most |V| level rebuilds.
    EXPECT_LE(dinic_phases, n);
    net.reset_flow();
    const auto flow2 = net.max_flow_mpm(0, static_cast<VertexId>(n - 1));
    EXPECT_EQ(flow, flow2);
    EXPECT_LE(net.last_phase_count(), n);
    if (flow > 0) {
      EXPECT_GE(dinic_phases, 1u);
    }
  }
}

}  // namespace
}  // namespace structnet
