// Parameterized property sweeps (TEST_P): cross-cutting invariants
// checked over grids of seeds, sizes, and densities.
#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "algo/chordal.hpp"
#include "algo/components.hpp"
#include "core/generators.hpp"
#include "intersection/interval_graph.hpp"
#include "labeling/safety_levels.hpp"
#include "labeling/static_labels.hpp"
#include "mobility/contact_trace.hpp"
#include "mobility/mobility_models.hpp"
#include "sim/dtn_routing.hpp"
#include "temporal/journeys.hpp"
#include "trimming/eg_trimming.hpp"

namespace structnet {
namespace {

// ------------------------------------------------- journey invariants

class JourneyProperties
    : public ::testing::TestWithParam<std::tuple<int, std::size_t, double>> {
 protected:
  TemporalGraph make_trace() {
    const auto [seed, nodes, radius] = GetParam();
    Rng rng(static_cast<std::uint64_t>(seed));
    RandomWaypointParams p;
    p.nodes = nodes;
    p.steps = 30;
    return contacts_from_trajectory(random_waypoint(p, rng), radius);
  }
};

TEST_P(JourneyProperties, CriteriaAreConsistent) {
  const auto eg = make_trace();
  const std::size_t n = eg.vertex_count();
  for (VertexId s = 0; s < n; s += 3) {
    for (VertexId d = 1; d < n; d += 4) {
      if (s == d) continue;
      const auto ec = earliest_completion_journey(eg, s, d, 0);
      const auto mh = minimum_hop_journey(eg, s, d, 0);
      const auto fp = fastest_journey(eg, s, d, 0);
      // All three exist or none does.
      EXPECT_EQ(ec.has_value(), mh.has_value());
      EXPECT_EQ(ec.has_value(), fp.has_value());
      if (!ec) continue;
      EXPECT_TRUE(ec->valid_for(eg));
      EXPECT_TRUE(mh->valid_for(eg));
      EXPECT_TRUE(fp->valid_for(eg));
      // Earliest completion is minimal; min hop is minimal; fastest span
      // is minimal.
      EXPECT_LE(ec->completion(), mh->completion());
      EXPECT_LE(ec->completion(), fp->completion());
      EXPECT_LE(mh->hop_count(), ec->hop_count());
      EXPECT_LE(mh->hop_count(), fp->hop_count());
      EXPECT_LE(fp->span(), ec->span());
      EXPECT_LE(fp->span(), mh->span());
    }
  }
}

TEST_P(JourneyProperties, EpidemicRoutingMatchesOracle) {
  const auto eg = make_trace();
  const std::size_t n = eg.vertex_count();
  for (VertexId s = 0; s < n; s += 5) {
    const auto oracle = earliest_arrival(eg, s, 0);
    for (VertexId d = 0; d < n; d += 3) {
      if (s == d) continue;
      const auto sim = simulate_routing(eg, s, d, 0, epidemic_strategy(), 0);
      if (oracle.completion[d] == kNeverTime) {
        EXPECT_FALSE(sim.delivered);
      } else {
        ASSERT_TRUE(sim.delivered);
        EXPECT_EQ(sim.delivery_time, oracle.completion[d]);
      }
    }
  }
}

TEST_P(JourneyProperties, ReachabilityMonotoneInStartTime) {
  // Starting later can never reach more: completion sets shrink as
  // t_start grows.
  const auto eg = make_trace();
  for (VertexId s = 0; s < eg.vertex_count(); s += 4) {
    auto prev = earliest_arrival(eg, s, 0).completion;
    for (TimeUnit t0 = 1; t0 < eg.horizon(); t0 += 7) {
      const auto now = earliest_arrival(eg, s, t0).completion;
      for (std::size_t v = 0; v < now.size(); ++v) {
        if (now[v] != kNeverTime) {
          EXPECT_NE(prev[v], kNeverTime);
          EXPECT_LE(prev[v], now[v]);
        }
      }
      prev = now;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, JourneyProperties,
    ::testing::Combine(::testing::Values(1, 2, 3, 4),
                       ::testing::Values(std::size_t{8}, std::size_t{14}),
                       ::testing::Values(0.2, 0.35)));

// ------------------------------------------------ trimming preservation

class TrimmingProperties : public ::testing::TestWithParam<int> {};

TEST_P(TrimmingProperties, AllThreeRulesPreserveCompletion) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  RandomWaypointParams p;
  p.nodes = 9;
  p.steps = 10;
  const auto eg = contacts_from_trajectory(random_waypoint(p, rng), 0.45);
  std::vector<double> prio(p.nodes);
  for (std::size_t v = 0; v < p.nodes; ++v) prio[v] = double(p.nodes - v);

  const auto nodes = trim_nodes(eg, prio);
  std::vector<bool> alive(p.nodes, true);
  for (VertexId v : nodes.removed_nodes) alive[v] = false;
  EXPECT_TRUE(preserves_reachability(eg, nodes.trimmed, alive, true));

  const std::vector<bool> all(p.nodes, true);
  // Link trimming guarantees reachability (endpoint arrivals may slip);
  // label trimming is exact.
  EXPECT_TRUE(
      preserves_reachability(eg, trim_links(eg, prio).trimmed, all, false));
  EXPECT_TRUE(preserves_reachability(eg, trim_labels(eg).trimmed, all, true));
}

TEST_P(TrimmingProperties, MinHopVariantNodeTrimPreservesHopCounts) {
  // The paper: "we can require that each replacement path have, at most,
  // one intermediate node" to preserve minimum hop counts. This holds
  // for NODE trimming (every 2-hop through-segment is replaced by a
  // <= 2-hop segment); journeys between surviving pairs keep their
  // minimum hop counts exactly.
  Rng rng(static_cast<std::uint64_t>(GetParam() + 100));
  RandomWaypointParams p;
  p.nodes = 8;
  p.steps = 8;
  const auto eg = contacts_from_trajectory(random_waypoint(p, rng), 0.5);
  std::vector<double> prio(p.nodes);
  for (std::size_t v = 0; v < p.nodes; ++v) prio[v] = double(p.nodes - v);
  const auto nodes = trim_nodes(eg, prio, TrimVariant::kMinimumHopPreserving);
  std::vector<bool> alive(p.nodes, true);
  for (VertexId v : nodes.removed_nodes) alive[v] = false;
  for (VertexId s = 0; s < p.nodes; ++s) {
    for (VertexId d = 0; d < p.nodes; ++d) {
      if (s == d || !alive[s] || !alive[d]) continue;
      const auto before = minimum_hop_journey(eg, s, d, 0);
      const auto after = minimum_hop_journey(nodes.trimmed, s, d, 0);
      ASSERT_EQ(before.has_value(), after.has_value()) << s << "->" << d;
      if (before && after) {
        EXPECT_EQ(before->hop_count(), after->hop_count()) << s << "->" << d;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TrimmingProperties,
                         ::testing::Range(1, 11));

// -------------------------------------------------- labeling invariants

class LabelingProperties
    : public ::testing::TestWithParam<std::tuple<std::size_t, double, int>> {};

TEST_P(LabelingProperties, AllSetsSatisfyDefinitions) {
  const auto [n, avg_degree, seed] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed));
  Graph g = erdos_renyi(n, avg_degree / double(n), rng);
  std::vector<double> prio(n);
  for (auto& p : prio) p = rng.uniform01();

  const auto mis = distributed_mis(g, prio);
  EXPECT_TRUE(is_maximal_independent_set(g, mis.in_mis));

  const auto ds = neighbor_designated_ds(g, prio);
  EXPECT_TRUE(is_dominating_set(g, ds));

  // CDS properties are per connected component; validate on the largest.
  const auto mask = largest_component_mask(g);
  std::vector<VertexId> map;
  const Graph comp = g.induced_subgraph(mask, &map);
  if (comp.vertex_count() >= 3) {
    const auto black = marking_process(comp);
    if (std::any_of(black.begin(), black.end(), [](bool b) { return b; })) {
      EXPECT_TRUE(is_connected_dominating_set(comp, black));
      std::vector<double> cprio(comp.vertex_count());
      for (auto& p : cprio) p = rng.uniform01();
      EXPECT_TRUE(
          is_connected_dominating_set(comp, trim_cds(comp, black, cprio)));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LabelingProperties,
    ::testing::Combine(::testing::Values(std::size_t{24}, std::size_t{48},
                                         std::size_t{96}),
                       ::testing::Values(3.0, 6.0, 12.0),
                       ::testing::Values(1, 2, 3)));

// -------------------------------------------------- safety level sweeps

class SafetyLevelProperties
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(SafetyLevelProperties, LevelSemanticsHold) {
  const auto [dims, faults] = GetParam();
  Rng rng(dims * 31 + faults);
  std::vector<std::size_t> faulty;
  for (auto f :
       rng.sample_without_replacement(std::size_t{1} << dims, faults)) {
    faulty.push_back(f);
  }
  const SafetyLevelCube cube(dims, faulty);
  EXPECT_LE(cube.rounds_used(), dims - 1);
  for (std::size_t v = 0; v < cube.node_count(); ++v) {
    if (cube.is_faulty(v)) {
      EXPECT_EQ(cube.level(v), 0u);
      continue;
    }
    // Level l guarantee: shortest-path routing to everything within l.
    const auto l = cube.level(v);
    for (std::size_t t = 0; t < cube.node_count(); ++t) {
      if (t == v || cube.is_faulty(t)) continue;
      const auto d = SafetyLevelCube::hamming(v, t);
      if (d > l) continue;
      const auto path = cube.route(v, t);
      ASSERT_TRUE(path.has_value()) << v << "->" << t;
      EXPECT_EQ(path->size() - 1, d);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SafetyLevelProperties,
    ::testing::Combine(::testing::Values(std::size_t{4}, std::size_t{5},
                                         std::size_t{6}),
                       ::testing::Values(std::size_t{1}, std::size_t{3},
                                         std::size_t{6})));

// ----------------------------------------------- interval graph sweeps

class IntervalProperties : public ::testing::TestWithParam<int> {};

TEST_P(IntervalProperties, GeneratedIntervalGraphsAreChordalInterval) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  std::vector<Interval> iv;
  for (int i = 0; i < 12; ++i) {
    const double s = rng.uniform(0.0, 40.0);
    iv.push_back(Interval{s, s + rng.uniform(0.0, 10.0)});
  }
  const Graph g = interval_graph(iv);
  EXPECT_TRUE(is_chordal(g));
  const auto verdict = is_interval_graph(g);
  ASSERT_TRUE(verdict.has_value());
  EXPECT_TRUE(*verdict);
  EXPECT_TRUE(is_interval_representation(g, iv));
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntervalProperties, ::testing::Range(1, 16));

}  // namespace
}  // namespace structnet
