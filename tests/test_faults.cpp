// Fault subsystem: deterministic fault plans, degraded traces, lossy
// routing with retry/backoff, stream checkpoint/restore, crash
// recovery, and node-removal percolation.
#include <gtest/gtest.h>

#include <stdlib.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/generators.hpp"
#include "fault/checkpoint.hpp"
#include "fault/fault_plan.hpp"
#include "fault/recovery.hpp"
#include "fault/robustness.hpp"
#include "fault/wal.hpp"
#include "obs/metrics.hpp"
#include "sim/dtn_routing.hpp"
#include "stream/engine.hpp"
#include "stream/observers.hpp"
#include "temporal/temporal_csr.hpp"
#include "temporal/temporal_graph.hpp"
#include "util/rng.hpp"

namespace structnet {
namespace {

// ------------------------------------------------------------ FaultPlan

TEST(FaultPlanTest, LossDrawIsPureFunctionOfContact) {
  FaultPlan plan(99);
  plan.set_contact_loss(0.5);
  // Re-querying any contact, in any order, gives the same answer; the
  // draw is symmetric in the endpoints.
  std::vector<bool> forward, backward;
  for (TimeUnit t = 0; t < 64; ++t) {
    forward.push_back(plan.transmission_lost(3, 7, t));
  }
  for (TimeUnit t = 64; t-- > 0;) {
    backward.push_back(plan.transmission_lost(7, 3, t));
  }
  for (std::size_t i = 0; i < forward.size(); ++i) {
    EXPECT_EQ(forward[i], backward[forward.size() - 1 - i]) << "t=" << i;
  }
  // Different contacts decorrelate: at p=0.5 over 64 units, identical
  // draw sequences for two distinct pairs would be astronomically rare.
  std::vector<bool> other_pair;
  for (TimeUnit t = 0; t < 64; ++t) {
    other_pair.push_back(plan.transmission_lost(3, 8, t));
  }
  EXPECT_NE(forward, other_pair);
}

TEST(FaultPlanTest, LossRateTracksProbability) {
  for (const double p : {0.0, 0.25, 0.75, 1.0}) {
    FaultPlan plan(5);
    plan.set_contact_loss(p);
    std::size_t lost = 0;
    const std::size_t total = 20'000;
    for (std::size_t i = 0; i < total; ++i) {
      const auto u = static_cast<VertexId>(i % 140);
      const auto v = static_cast<VertexId>((i / 140) % 140 + 140);
      if (plan.transmission_lost(u, v, static_cast<TimeUnit>(i))) ++lost;
    }
    const double rate = static_cast<double>(lost) / total;
    EXPECT_NEAR(rate, p, 0.02) << "p=" << p;
  }
}

TEST(FaultPlanTest, ScheduleWindows) {
  FaultPlan plan;
  plan.add_outage({2, 5, 9});                              // node 2 down [5,9)
  plan.add_blackout({0, 1, 3, 6});                         // link (0,1) dark
  plan.add_blackout({kInvalidVertex, kInvalidVertex, 20, 22});  // everything

  EXPECT_TRUE(plan.node_up(2, 4));
  EXPECT_FALSE(plan.node_up(2, 5));
  EXPECT_FALSE(plan.node_up(2, 8));
  EXPECT_TRUE(plan.node_up(2, 9));
  EXPECT_TRUE(plan.node_up(3, 7));  // other nodes unaffected

  EXPECT_TRUE(plan.link_up(0, 1, 2));
  EXPECT_FALSE(plan.link_up(0, 1, 3));
  EXPECT_FALSE(plan.link_up(1, 0, 5));  // symmetric
  EXPECT_TRUE(plan.link_up(0, 1, 6));
  EXPECT_TRUE(plan.link_up(0, 3, 4));  // other links unaffected

  // A down endpoint takes the link down with it.
  EXPECT_FALSE(plan.link_up(2, 3, 6));
  // The global blackout covers every link.
  EXPECT_FALSE(plan.link_up(0, 3, 20));
  EXPECT_FALSE(plan.link_up(5, 9, 21));
  EXPECT_TRUE(plan.link_up(5, 9, 22));
}

TEST(FaultPlanTest, SplitKeepsScheduleDecorrelatesLoss) {
  FaultPlan plan(17);
  plan.set_contact_loss(0.5).add_outage({1, 2, 4});
  const FaultPlan replica = plan.split(3);
  EXPECT_EQ(replica.contact_loss(), plan.contact_loss());
  EXPECT_FALSE(replica.node_up(1, 3));  // schedule carried over
  EXPECT_NE(replica.seed(), plan.seed());
  bool differs = false;
  for (TimeUnit t = 0; t < 64 && !differs; ++t) {
    differs = plan.transmission_lost(0, 1, t) !=
              replica.transmission_lost(0, 1, t);
  }
  EXPECT_TRUE(differs);  // p=0.5 over 64 draws: disagreement is certain
}

TemporalGraph random_trace(std::size_t n, TimeUnit horizon,
                           std::size_t contacts, std::uint64_t seed) {
  Rng rng(seed);
  TemporalGraph eg(n, horizon);
  std::size_t added = 0;
  while (added < contacts) {
    const auto u = static_cast<VertexId>(rng.index(n));
    const auto v = static_cast<VertexId>(rng.index(n));
    if (u == v) continue;
    eg.add_contact(u, v, static_cast<TimeUnit>(rng.index(horizon)));
    ++added;
  }
  return eg;
}

TEST(FaultPlanTest, DegradedTraceMatchesContactFilter) {
  const TemporalGraph trace = random_trace(16, 24, 150, 3);
  FaultPlan plan(21);
  plan.set_contact_loss(0.3).add_outage({4, 0, 24}).add_blackout({1, 2, 5, 15});

  const TemporalGraph degraded = plan.degraded(trace);
  EXPECT_EQ(degraded.vertex_count(), trace.vertex_count());
  EXPECT_EQ(degraded.horizon(), trace.horizon());

  // Exactly the working contacts survive (incl. endpoint-up checks).
  std::size_t works = 0;
  for (const Contact& c : trace.contacts()) {
    const bool kept = plan.link_up(c.u, c.v, c.t) &&
                      !plan.transmission_lost(c.u, c.v, c.t);
    if (kept) ++works;
    EXPECT_EQ(degraded.has_contact(c.u, c.v, c.t), kept)
        << c.u << "-" << c.v << "@" << c.t;
  }
  EXPECT_EQ(degraded.contacts().size(), works);
  EXPECT_LT(works, trace.contacts().size());  // the plan actually bites
  EXPECT_GT(works, 0u);

  // The CSR path and a second evaluation both agree bit-for-bit.
  EXPECT_EQ(degraded, plan.degraded(TemporalCsr(trace)));
  EXPECT_EQ(degraded, plan.degraded(trace));

  // A no-fault plan degrades nothing.
  EXPECT_EQ(FaultPlan(21).degraded(trace), trace);
}

// ------------------------------------------------------- routing faults

/// Contacts between 0 and 1 at every unit of [0, horizon).
TemporalGraph pair_trace(TimeUnit horizon) {
  TemporalGraph eg(2, horizon);
  for (TimeUnit t = 0; t < horizon; ++t) eg.add_contact(0, 1, t);
  return eg;
}

TEST(FaultRoutingTest, CertainLossBurnsOneTransmissionPerContact) {
  const TemporalGraph trace = pair_trace(10);
  FaultPlan plan(1);
  plan.set_contact_loss(1.0);
  SimulationFaults faults;
  faults.plan = &plan;
  const RoutingOutcome out =
      simulate_routing(trace, 0, 1, 0, direct_strategy(), 1, faults);
  EXPECT_FALSE(out.delivered);
  EXPECT_EQ(out.transmissions, 10u);  // one failed attempt per unit
}

TEST(FaultRoutingTest, MaxAttemptsBoundsTheBurn) {
  const TemporalGraph trace = pair_trace(10);
  FaultPlan plan(1);
  plan.set_contact_loss(1.0);
  SimulationFaults faults;
  faults.plan = &plan;
  faults.retry.max_attempts = 2;
  const RoutingOutcome out =
      simulate_routing(trace, 0, 1, 0, direct_strategy(), 1, faults);
  EXPECT_FALSE(out.delivered);
  EXPECT_EQ(out.transmissions, 2u);  // then the pair gives up for good
}

TEST(FaultRoutingTest, ExponentialBackoffSpacesAttempts) {
  const TemporalGraph trace = pair_trace(10);
  FaultPlan plan(1);
  plan.set_contact_loss(1.0);
  SimulationFaults faults;
  faults.plan = &plan;
  faults.retry.backoff_base = 2;
  faults.retry.backoff_factor = 2;
  const RoutingOutcome out =
      simulate_routing(trace, 0, 1, 0, direct_strategy(), 1, faults);
  EXPECT_FALSE(out.delivered);
  // Attempts at t = 0, 2, 6; the next would be t = 14, past the horizon.
  EXPECT_EQ(out.transmissions, 3u);
}

TEST(FaultRoutingTest, RetryDeliversOnceTheDrawSpares) {
  // Find a seed whose loss draw fails (0,1) at t=0 but spares t=1.
  std::uint64_t seed = 0;
  for (;; ++seed) {
    FaultPlan probe(seed);
    probe.set_contact_loss(0.5);
    if (probe.transmission_lost(0, 1, 0) &&
        !probe.transmission_lost(0, 1, 1)) {
      break;
    }
  }
  FaultPlan plan(seed);
  plan.set_contact_loss(0.5);
  SimulationFaults faults;
  faults.plan = &plan;
  const RoutingOutcome out =
      simulate_routing(pair_trace(10), 0, 1, 0, direct_strategy(), 1, faults);
  EXPECT_TRUE(out.delivered);
  EXPECT_EQ(out.delivery_time, 1u);   // first attempt burned, retry lands
  EXPECT_EQ(out.transmissions, 2u);
}

TEST(FaultRoutingTest, ScheduleFaultsSuppressWithoutRadioCost) {
  const TemporalGraph trace = pair_trace(10);
  SimulationFaults faults;

  FaultPlan blackout;
  blackout.add_blackout({kInvalidVertex, kInvalidVertex, 0, 10});
  faults.plan = &blackout;
  RoutingOutcome out =
      simulate_routing(trace, 0, 1, 0, direct_strategy(), 1, faults);
  EXPECT_FALSE(out.delivered);
  EXPECT_EQ(out.transmissions, 0u);  // the contacts never happened

  FaultPlan outage;
  outage.add_outage({1, 0, 10});
  faults.plan = &outage;
  out = simulate_routing(trace, 0, 1, 0, direct_strategy(), 1, faults);
  EXPECT_FALSE(out.delivered);
  EXPECT_EQ(out.transmissions, 0u);

  // A window leaves the remaining contacts usable.
  FaultPlan window;
  window.add_blackout({0, 1, 0, 4});
  faults.plan = &window;
  out = simulate_routing(trace, 0, 1, 0, direct_strategy(), 1, faults);
  EXPECT_TRUE(out.delivered);
  EXPECT_EQ(out.delivery_time, 4u);
  EXPECT_EQ(out.transmissions, 1u);
}

void expect_same_outcome(const RoutingOutcome& a, const RoutingOutcome& b,
                         const std::string& what) {
  EXPECT_EQ(a.delivered, b.delivered) << what;
  EXPECT_EQ(a.delivery_time, b.delivery_time) << what;
  EXPECT_EQ(a.hops, b.hops) << what;
  EXPECT_EQ(a.copies, b.copies) << what;
  EXPECT_EQ(a.transmissions, b.transmissions) << what;
}

TEST(FaultRoutingTest, EmptyPlanMatchesNoPlan) {
  const TemporalGraph trace = random_trace(12, 30, 120, 9);
  const FaultPlan empty;
  SimulationFaults with_plan;
  with_plan.plan = &empty;
  const RoutingOutcome a =
      simulate_routing(trace, 0, 11, 0, epidemic_strategy(), 0, {});
  const RoutingOutcome b =
      simulate_routing(trace, 0, 11, 0, epidemic_strategy(), 0, with_plan);
  expect_same_outcome(a, b, "empty plan");
  EXPECT_TRUE(a.delivered);
}

TEST(FaultRoutingTest, TrialsBitIdenticalAcrossThreadCounts) {
  const TemporalGraph trace = random_trace(24, 40, 400, 13);
  FaultPlan plan(77);
  plan.set_contact_loss(0.6)
      .add_outage({5, 10, 20})
      .add_blackout({2, 3, 0, 15});
  SimulationFaults faults;
  faults.plan = &plan;
  faults.ttl = 12;
  faults.retry.max_attempts = 3;
  faults.retry.backoff_base = 1;
  const std::size_t trials = 48;

  const RoutingTrialStats base = simulate_routing_trials(
      trace, 0, 23, 0, epidemic_strategy(), 0, faults, trials, 1);
  EXPECT_GT(base.delivered, 0u);
  EXPECT_LT(base.delivered, trials);  // the plan actually bites
  for (const std::size_t threads : {2u, 8u}) {
    const RoutingTrialStats other = simulate_routing_trials(
        trace, 0, 23, 0, epidemic_strategy(), 0, faults, trials, threads);
    ASSERT_EQ(other.outcomes.size(), base.outcomes.size());
    for (std::size_t i = 0; i < trials; ++i) {
      expect_same_outcome(base.outcomes[i], other.outcomes[i],
                          "trial " + std::to_string(i) + " threads " +
                              std::to_string(threads));
    }
    EXPECT_EQ(other.delivered, base.delivered);
    EXPECT_EQ(other.delivery_ratio, base.delivery_ratio);
    EXPECT_EQ(other.mean_delivery_time, base.mean_delivery_time);
    EXPECT_EQ(other.mean_transmissions, base.mean_transmissions);
  }
}

TEST(FaultRoutingTest, DeliveryRatioDegradesWithLoss) {
  const TemporalGraph trace = random_trace(20, 30, 250, 29);
  double previous = 1.1;
  for (const double loss : {0.0, 0.5, 0.95}) {
    FaultPlan plan(4);
    plan.set_contact_loss(loss);
    SimulationFaults faults;
    faults.plan = &plan;
    faults.ttl = 12;
    const RoutingTrialStats stats = simulate_routing_trials(
        trace, 0, 19, 0, spray_and_wait_strategy(), 4, faults, 64);
    EXPECT_LE(stats.delivery_ratio, previous + 1e-12) << "loss=" << loss;
    previous = stats.delivery_ratio;
  }
}

// ----------------------------------------------------------- checkpoint

std::vector<Event> churn_stream(std::size_t n, std::size_t count, Rng& rng) {
  std::vector<Event> events;
  events.reserve(count);
  while (events.size() < count) {
    const auto u = static_cast<VertexId>(rng.index(n));
    const auto v = static_cast<VertexId>(rng.index(n));
    const double dice = rng.uniform01();
    if (dice < 0.35) {
      events.push_back(Event::edge_insert(u, v));
    } else if (dice < 0.6) {
      events.push_back(Event::edge_delete(u, v));
    } else if (dice < 0.75) {
      events.push_back(Event::contact_add(
          u, v, static_cast<TimeUnit>(rng.index(16))));
    } else if (dice < 0.88) {
      events.push_back(Event::node_leave(u));
    } else {
      events.push_back(Event::node_join(u));  // revival attempt
    }
  }
  return events;
}

TEST(CheckpointTest, RoundTripPreservesEngineState) {
  Rng rng(31);
  const Graph seed = erdos_renyi(32, 0.15, rng);
  StreamEngine engine{DynamicGraph(seed)};
  for (const Event& e : churn_stream(32, 300, rng)) engine.apply(e);
  ASSERT_GT(engine.accepted(), 0u);
  ASSERT_GT(engine.rejected(), 0u);  // the mix provokes rejections

  std::stringstream buffer;
  write_checkpoint(buffer, engine);
  const CheckpointResult restored = read_checkpoint(buffer);
  ASSERT_TRUE(restored.ok()) << restored.error << " at line " << restored.line;

  const DynamicGraph& a = engine.graph();
  const DynamicGraph& b = restored.engine->graph();
  EXPECT_EQ(a.log(), b.log());
  EXPECT_EQ(a.epoch(), b.epoch());
  EXPECT_EQ(a.vertex_count(), b.vertex_count());
  EXPECT_EQ(a.alive_count(), b.alive_count());
  EXPECT_EQ(a.edge_count(), b.edge_count());
  EXPECT_EQ(a.materialize(), b.materialize());
  // Epoch-0 state survives too (snapshots reach back before the crash).
  EXPECT_EQ(a.snapshot_at(0).materialize(), b.snapshot_at(0).materialize());
  EXPECT_EQ(restored.engine->accepted(), engine.accepted());
  EXPECT_EQ(restored.engine->rejected(), engine.rejected());
  EXPECT_EQ(restored.engine->reject_counts(), engine.reject_counts());
}

TEST(CheckpointTest, RoundTripEmptyEngine) {
  StreamEngine engine{DynamicGraph(std::size_t{0})};
  std::stringstream buffer;
  write_checkpoint(buffer, engine);
  const CheckpointResult restored = read_checkpoint(buffer);
  ASSERT_TRUE(restored.ok()) << restored.error;
  EXPECT_EQ(restored.engine->graph().vertex_count(), 0u);
  EXPECT_EQ(restored.engine->graph().epoch(), 0u);
}

TEST(CheckpointTest, RejectsMalformedInput) {
  const struct {
    const char* name;
    const char* text;
    std::size_t line;
    const char* error_contains;
  } cases[] = {
      {"empty", "", 1, "missing magic"},
      {"bad magic", "structnet-checkpoint 9\n", 1, "bad magic"},
      {"short header", "structnet-checkpoint 1\n3 1\n", 2, "header"},
      {"junk header", "structnet-checkpoint 1\n3 x 0 0 0\n", 2,
       "invalid number"},
      {"missing counts", "structnet-checkpoint 1\n3 0 0 0 0\n", 3,
       "reject-count"},
      {"short counts", "structnet-checkpoint 1\n3 0 0 0 0\n0 0 0\n", 3,
       "reject counts"},
      {"truncated edges",
       "structnet-checkpoint 1\n3 2 0 0 0\n0 0 0 0 0 0 0\n0 1\n", 5,
       "truncated"},
      {"edge out of range",
       "structnet-checkpoint 1\n3 1 0 0 0\n0 0 0 0 0 0 0\n0 9\n", 4,
       "out of range"},
      {"self-loop edge",
       "structnet-checkpoint 1\n3 1 0 0 0\n0 0 0 0 0 0 0\n1 1\n", 4,
       "self loop"},
      {"duplicate edge",
       "structnet-checkpoint 1\n3 2 0 0 0\n0 0 0 0 0 0 0\n0 1\n1 0\n", 5,
       "duplicate"},
      {"truncated events",
       "structnet-checkpoint 1\n3 0 2 2 0\n0 0 0 0 0 0 0\n0 0 1 0 0\n", 5,
       "truncated"},
      {"unknown event kind",
       "structnet-checkpoint 1\n3 0 1 1 0\n0 0 0 0 0 0 0\n9 0 1 0 0\n", 4,
       "unknown kind"},
      // An EdgeDelete of a missing edge can never sit in an accepted log.
      {"inconsistent log",
       "structnet-checkpoint 1\n3 0 1 1 0\n0 0 0 0 0 0 0\n1 0 1 0 0\n", 4,
       "replay rejected"},
  };
  for (const auto& c : cases) {
    std::stringstream in(c.text);
    const CheckpointResult result = read_checkpoint(in);
    EXPECT_FALSE(result.ok()) << c.name;
    EXPECT_EQ(result.line, c.line) << c.name << ": " << result.error;
    EXPECT_NE(result.error.find(c.error_contains), std::string::npos)
        << c.name << ": got '" << result.error << "'";
  }
}

// ------------------------------------------------------- crash recovery

TEST(CrashRecoveryTest, HundredRandomizedChurnStreams) {
  const std::size_t n = 24;
  const std::size_t stream_length = 160;
  for (std::uint64_t run = 0; run < 100; ++run) {
    Rng rng(derive_seed(1234, run));
    const auto events = churn_stream(n, stream_length, rng);
    const std::size_t kill_at = rng.index(stream_length + 1);
    const RecoveryOutcome out =
        run_crash_recovery(n, events, kill_at, derive_seed(99, run));
    EXPECT_TRUE(out.graph_match) << "run " << run << " kill " << kill_at;
    EXPECT_TRUE(out.counters_match) << "run " << run << " kill " << kill_at;
    EXPECT_TRUE(out.cores_match) << "run " << run << " kill " << kill_at;
    EXPECT_TRUE(out.mis_match) << "run " << run << " kill " << kill_at;
  }
}

TEST(CrashRecoveryTest, SurvivesEdgeKillPoints) {
  Rng rng(7);
  const auto events = churn_stream(16, 80, rng);
  for (const std::size_t kill_at : {std::size_t{0}, events.size()}) {
    const RecoveryOutcome out = run_crash_recovery(16, events, kill_at);
    EXPECT_TRUE(out.ok()) << "kill_at " << kill_at;
    EXPECT_EQ(out.kill_at, kill_at);
  }
}

// ------------------------------------------------------------------ WAL

namespace fs = std::filesystem;

/// Fresh per-test scratch directory, removed on scope exit.
struct TempDir {
  std::string path;
  TempDir() {
    std::string tmpl =
        (fs::temp_directory_path() / "structnet-test-XXXXXX").string();
    path = ::mkdtemp(tmpl.data());
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
};

std::string wal_segment_path(const std::string& dir,
                             std::uint64_t first_index = 0) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "wal-%020llu.seg",
                static_cast<unsigned long long>(first_index));
  return (fs::path(dir) / buf).string();
}

TEST(WalTest, EventEncodingRoundTripsEveryKind) {
  const Event samples[] = {
      Event::edge_insert(3, 900'000),
      Event::edge_delete(0, 1),
      Event::contact_add(7, 8, 4'000'000'000u),
      Event::contact_relabel(2, 5, 13, 4'000'000'001u),
      Event::node_join(kInvalidVertex),
      Event::node_leave(9),
  };
  for (const Event& e : samples) {
    unsigned char bytes[kWalEventBytes];
    wal_encode_event(e, bytes);
    Event back;
    ASSERT_TRUE(wal_decode_event(bytes, &back));
    EXPECT_EQ(back, e);
  }
  unsigned char junk[kWalEventBytes] = {0xFF};
  Event ignored;
  EXPECT_FALSE(wal_decode_event(junk, &ignored));  // invalid kind byte
}

TEST(WalTest, Crc32cMatchesCheckValue) {
  // The CRC32C check value: crc of the ASCII digits "123456789".
  EXPECT_EQ(crc32c("123456789", 9), 0xE3069283u);
  // Seed chaining == one-shot over the concatenation.
  const std::uint32_t part = crc32c("12345", 5);
  EXPECT_EQ(crc32c("6789", 4, part), 0xE3069283u);
}

TEST(WalTest, AppendScanRoundTripMatchesAcceptedLog) {
  TempDir tmp;
  Rng rng(41);
  const auto events = churn_stream(24, 200, rng);

  WalConfig config;
  config.dir = tmp.path;
  config.fsync_on_flush = false;
  WalAppender wal(config);
  StreamEngine engine{DynamicGraph(std::size_t{24})};
  engine.attach(&wal);
  for (const Event& e : events) engine.apply(e);
  wal.sync();
  ASSERT_GT(engine.accepted(), 0u);
  ASSERT_LT(engine.accepted(), events.size());  // the mix provokes rejects
  EXPECT_EQ(wal.appended(), engine.accepted());

  const WalRecovery rec = scan_wal(tmp.path);
  EXPECT_TRUE(rec.clean) << rec.detail;
  EXPECT_EQ(rec.first_index, 0u);
  const auto& log = engine.graph().log();
  ASSERT_EQ(rec.events.size(), log.size());
  EXPECT_TRUE(std::equal(log.begin(), log.end(), rec.events.begin()));
}

TEST(WalTest, GroupCommitZeroBuffersUntilSync) {
  TempDir tmp;
  WalConfig config;
  config.dir = tmp.path;
  config.group_commit = 0;  // buffer until batch end / sync
  config.fsync_on_flush = false;
  WalAppender wal(config);
  for (int i = 0; i < 10; ++i) {
    wal.append(Event::edge_insert(static_cast<VertexId>(i),
                                  static_cast<VertexId>(i + 1)));
  }
  // Nothing flushed yet: the segment file does not even exist.
  EXPECT_FALSE(fs::exists(wal_segment_path(tmp.path)));
  wal.sync();
  EXPECT_EQ(fs::file_size(wal_segment_path(tmp.path)),
            kWalHeaderBytes + 10 * kWalRecordBytes);
  EXPECT_EQ(wal.flushes(), 1u);
}

TEST(WalTest, SegmentsRollAndChainAcrossFiles) {
  TempDir tmp;
  WalConfig config;
  config.dir = tmp.path;
  config.segment_bytes = kWalHeaderBytes + 4 * kWalRecordBytes;
  config.fsync_on_flush = false;
  const std::size_t total = 23;
  {
    WalAppender wal(config);
    for (std::size_t i = 0; i < total; ++i) {
      wal.append(Event::edge_insert(static_cast<VertexId>(i),
                                    static_cast<VertexId>(i + 1)));
    }
    wal.sync();
    EXPECT_GT(wal.segments_opened(), 1u);
  }
  const WalRecovery rec = scan_wal(tmp.path);
  EXPECT_TRUE(rec.clean) << rec.detail;
  EXPECT_GT(rec.segments, 1u);
  EXPECT_EQ(rec.segments_used, rec.segments);
  ASSERT_EQ(rec.events.size(), total);
  for (std::size_t i = 0; i < total; ++i) {
    EXPECT_EQ(rec.events[i].u, static_cast<VertexId>(i));
  }
}

TEST(WalTest, ScanClassifiesEveryDamageKind) {
  // One pristine 8-record segment, damaged per-case; the scan must
  // classify the damage and keep exactly the records before it.
  const std::size_t total = 8;
  const auto build = [&](const std::string& dir) {
    WalConfig config;
    config.dir = dir;
    config.fsync_on_flush = false;
    WalAppender wal(config);
    for (std::size_t i = 0; i < total; ++i) {
      wal.append(Event::edge_insert(static_cast<VertexId>(i),
                                    static_cast<VertexId>(i + 1)));
    }
    wal.sync();
  };
  const auto record_off = [](std::size_t i) {
    return kWalHeaderBytes + i * kWalRecordBytes;
  };
  const auto overwrite = [](const std::string& path, std::uint64_t off,
                            unsigned char byte) {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(static_cast<std::streamoff>(off));
    f.write(reinterpret_cast<const char*>(&byte), 1);
  };

  struct Case {
    const char* name;
    WalStop stop;
    std::size_t survivors;
    void (*damage)(const std::string& seg);
  };
  const Case cases[] = {
      {"truncate mid length prefix", WalStop::kTornLength, 5,
       [](const std::string& seg) {
         fs::resize_file(seg, kWalHeaderBytes + 5 * kWalRecordBytes + 3);
       }},
      {"truncate mid payload", WalStop::kTornPayload, 3,
       [](const std::string& seg) {
         fs::resize_file(seg, kWalHeaderBytes + 3 * kWalRecordBytes + 12);
       }},
      {"flipped payload byte", WalStop::kBadCrc, 2,
       [](const std::string& seg) {
         std::fstream f(seg,
                        std::ios::in | std::ios::out | std::ios::binary);
         const auto off = static_cast<std::streamoff>(
             kWalHeaderBytes + 2 * kWalRecordBytes + 10);
         f.seekg(off);
         char c;
         f.read(&c, 1);
         c = static_cast<char>(c ^ 0x40);
         f.seekp(off);
         f.write(&c, 1);
       }},
      {"zeroed length prefix", WalStop::kBadLength, 4,
       [](const std::string& seg) {
         std::fstream f(seg,
                        std::ios::in | std::ios::out | std::ios::binary);
         f.seekp(static_cast<std::streamoff>(kWalHeaderBytes +
                                             4 * kWalRecordBytes));
         const char zeros[4] = {0, 0, 0, 0};
         f.write(zeros, 4);
       }},
      {"truncate mid header", WalStop::kBadHeader, 0,
       [](const std::string& seg) { fs::resize_file(seg, 7); }},
  };
  for (const Case& c : cases) {
    TempDir tmp;
    build(tmp.path);
    const std::string seg = wal_segment_path(tmp.path);
    ASSERT_EQ(fs::file_size(seg), record_off(total)) << c.name;
    c.damage(seg);
    const WalSegmentScan scan = scan_wal_segment(seg);
    EXPECT_EQ(scan.stop, c.stop) << c.name;
    EXPECT_EQ(scan.events.size(), c.survivors) << c.name;
    if (c.stop != WalStop::kBadHeader) {
      EXPECT_EQ(scan.valid_bytes, record_off(c.survivors)) << c.name;
    }
    // Directory-level scan reports the same damage, non-clean.
    const WalRecovery rec = scan_wal(tmp.path);
    EXPECT_FALSE(rec.clean) << c.name;
    EXPECT_EQ(rec.events.size(), c.survivors) << c.name;
    EXPECT_EQ(rec.stops[static_cast<std::size_t>(c.stop)], 1u) << c.name;
  }
  (void)overwrite;  // helper for ad-hoc damage variants
}

TEST(WalTest, CorruptedLengthCannotRedirectCrcWindow) {
  // The CRC covers the length prefix: enlarging a record's declared
  // length (while bytes remain) must surface as kBadCrc, not as a
  // silently mis-framed record.
  TempDir tmp;
  WalConfig config;
  config.dir = tmp.path;
  config.fsync_on_flush = false;
  {
    WalAppender wal(config);
    for (int i = 0; i < 4; ++i) {
      wal.append(Event::edge_insert(static_cast<VertexId>(i),
                                    static_cast<VertexId>(i + 1)));
    }
    wal.sync();
  }
  const std::string seg = wal_segment_path(tmp.path);
  std::fstream f(seg, std::ios::in | std::ios::out | std::ios::binary);
  f.seekp(static_cast<std::streamoff>(kWalHeaderBytes));
  const unsigned char bigger = kWalEventBytes + kWalRecordBytes;
  f.write(reinterpret_cast<const char*>(&bigger), 1);
  f.close();
  const WalSegmentScan scan = scan_wal_segment(seg);
  EXPECT_EQ(scan.stop, WalStop::kBadCrc);
  EXPECT_EQ(scan.events.size(), 0u);
}

TEST(WalTest, PruneDropsOnlyFullyCoveredSegments) {
  TempDir tmp;
  WalConfig config;
  config.dir = tmp.path;
  config.segment_bytes = kWalHeaderBytes + 4 * kWalRecordBytes;
  config.fsync_on_flush = false;
  {
    WalAppender wal(config);
    for (std::size_t i = 0; i < 20; ++i) {
      wal.append(Event::edge_insert(static_cast<VertexId>(i),
                                    static_cast<VertexId>(i + 1)));
    }
    wal.sync();
  }
  const std::size_t before = scan_wal(tmp.path).segments;
  ASSERT_GT(before, 2u);
  // An anchor at record 10: segments whose whole range precedes it go.
  const std::size_t removed = prune_wal_segments(tmp.path, 10);
  EXPECT_GT(removed, 0u);
  const WalRecovery rec = scan_wal(tmp.path);
  EXPECT_EQ(rec.segments, before - removed);
  EXPECT_TRUE(rec.clean) << rec.detail;
  // Everything from the anchor on is still replayable.
  EXPECT_LE(rec.first_index, 10u);
  EXPECT_EQ(rec.first_index + rec.events.size(), 20u);
  // Pruning everything still keeps the newest segment.
  prune_wal_segments(tmp.path, 1000);
  EXPECT_GE(scan_wal(tmp.path).segments, 1u);
}

TEST(WalTest, ConcurrentScansAreRaceFree) {
  // Many threads scanning the same directory at once: the per-reason
  // stop counters resolve through a shared pinned table that must be
  // safe to read concurrently (this suite runs under TSan).
  TempDir tmp;
  WalConfig config;
  config.dir = tmp.path;
  config.fsync_on_flush = false;
  {
    WalAppender wal(config);
    for (int i = 0; i < 8; ++i) {
      wal.append(Event::edge_insert(static_cast<VertexId>(i),
                                    static_cast<VertexId>(i + 1)));
    }
    wal.sync();
  }
  std::atomic<std::size_t> clean{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      const WalRecovery rec = scan_wal(tmp.path);
      if (rec.clean && rec.events.size() == 8) clean.fetch_add(1);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(clean.load(), 8u);
}

TEST(WalTest, RepairHealsTornTailAndDropsUnreachableSegments) {
  // Multi-segment log, torn in a MIDDLE segment: repair must truncate
  // that segment to its valid record prefix and delete the segments
  // after it (a scan can never reach past the tear), leaving a clean,
  // extendable chain on disk.
  TempDir tmp;
  WalConfig config;
  config.dir = tmp.path;
  config.segment_bytes = kWalHeaderBytes + 4 * kWalRecordBytes;
  config.fsync_on_flush = false;
  {
    WalAppender wal(config);
    for (std::size_t i = 0; i < 20; ++i) {
      wal.append(Event::edge_insert(static_cast<VertexId>(i),
                                    static_cast<VertexId>(i + 1)));
    }
    wal.sync();
  }
  // Five 4-record segments (0, 4, 8, 12, 16); tear wal-8 mid-record.
  ASSERT_EQ(scan_wal(tmp.path).segments, 5u);
  const std::string torn = wal_segment_path(tmp.path, 8);
  fs::resize_file(torn, kWalHeaderBytes + 2 * kWalRecordBytes + 5);

  const WalRepair rep = repair_wal(tmp.path);
  EXPECT_EQ(rep.segments_truncated, 1u);
  EXPECT_EQ(rep.segments_removed, 2u);  // wal-12 and wal-16
  EXPECT_GT(rep.bytes_discarded, 0u);
  EXPECT_EQ(fs::file_size(torn), kWalHeaderBytes + 2 * kWalRecordBytes);

  const WalRecovery rec = scan_wal(tmp.path);
  EXPECT_TRUE(rec.clean) << rec.detail;
  EXPECT_EQ(rec.first_index, 0u);
  EXPECT_EQ(rec.events.size(), 10u);  // 4 + 4 + 2 survivors

  // Idempotent: a healed directory is untouched.
  const WalRepair again = repair_wal(tmp.path);
  EXPECT_EQ(again.segments_truncated, 0u);
  EXPECT_EQ(again.segments_removed, 0u);
  EXPECT_EQ(again.bytes_discarded, 0u);
}

// ------------------------------------------------------ checkpoint files

TEST(CheckpointFileTest, WriteReadRoundTrip) {
  TempDir tmp;
  Rng rng(17);
  StreamEngine engine{DynamicGraph(std::size_t{16})};
  for (const Event& e : churn_stream(16, 120, rng)) engine.apply(e);
  const std::string path = (fs::path(tmp.path) / "state.ckpt").string();
  std::string error;
  ASSERT_TRUE(write_checkpoint_file(path, engine, &error)) << error;
  EXPECT_FALSE(fs::exists(path + ".tmp"));  // temp renamed away
  const CheckpointResult restored = read_checkpoint_file(path);
  ASSERT_TRUE(restored.ok()) << restored.error;
  EXPECT_EQ(restored.engine->graph().log(), engine.graph().log());
  EXPECT_EQ(restored.engine->accepted(), engine.accepted());
}

TEST(CheckpointFileTest, MidWriteKillNeverClobbersTarget) {
  // A kill at ANY byte offset of the rewrite leaves the previous
  // complete checkpoint at the target path — the point of writing to
  // the side and renaming.
  TempDir tmp;
  const std::string path = (fs::path(tmp.path) / "state.ckpt").string();
  const std::string old_payload = "the previous complete checkpoint\n";
  std::string error;
  ASSERT_TRUE(detail::atomic_write_file(path, old_payload, &error)) << error;

  const std::string new_payload(256, 'x');
  for (std::size_t kill : {std::size_t{0}, std::size_t{1}, std::size_t{128},
                           new_payload.size() - 1}) {
    EXPECT_FALSE(
        detail::atomic_write_file(path, new_payload, &error, kill));
    std::ifstream in(path, std::ios::binary);
    std::stringstream content;
    content << in.rdbuf();
    EXPECT_EQ(content.str(), old_payload) << "kill at byte " << kill;
  }
  // The completed write replaces it atomically.
  ASSERT_TRUE(detail::atomic_write_file(path, new_payload, &error)) << error;
  std::ifstream in(path, std::ios::binary);
  std::stringstream content;
  content << in.rdbuf();
  EXPECT_EQ(content.str(), new_payload);
}

TEST(CheckpointFileTest, ReaderRejectsAbsurdDeclaredCounts) {
  // Adversarial headers must fail BEFORE the reader allocates or
  // replays anything: counts are checked against an absolute vertex cap
  // and the bytes actually remaining in the stream.
  const struct {
    const char* name;
    const char* text;
    std::size_t line;
    const char* error_contains;
  } cases[] = {
      {"vertex count above cap",
       "structnet-checkpoint 1\n20000000 0 0 0 0\n0 0 0 0 0 0 0\n", 2,
       "exceeds cap"},
      {"edge count beyond file size",
       "structnet-checkpoint 1\n3 4000000000 0 0 0\n0 0 0 0 0 0 0\n", 2,
       "exceeds remaining file size"},
      {"event count beyond file size",
       "structnet-checkpoint 1\n3 0 4000000000 0 0\n0 0 0 0 0 0 0\n", 2,
       "exceeds remaining file size"},
      {"combined counts beyond file size",
       "structnet-checkpoint 1\n3 4 12 16 0\n0 0 0 0 0 0 0\n"
       "0 1\n0 2\n1 2\n", 2,
       "exceeds remaining file size"},
      {"truncated mid record",
       "structnet-checkpoint 1\n3 0 1 1 0\n0 0 0 0 0 0 0\n0 0 1 0\n", 4,
       "expected 5 fields"},
  };
  for (const auto& c : cases) {
    std::stringstream in(c.text);
    const CheckpointResult result = read_checkpoint(in);
    EXPECT_FALSE(result.ok()) << c.name;
    EXPECT_EQ(result.line, c.line) << c.name << ": " << result.error;
    EXPECT_NE(result.error.find(c.error_contains), std::string::npos)
        << c.name << ": got '" << result.error << "'";
  }
}

TEST(CheckpointFileTest, ReaderRejectsEmbeddedNul) {
  // NUL bytes smuggled into numeric fields must read as malformed, not
  // silently terminate the field.
  const char raw[] =
      "structnet-checkpoint 1\n3 1 0 0 0\n0 0 0 0 0 0 0\n0\0 1\n";
  std::stringstream in(std::string(raw, sizeof(raw) - 1));
  const CheckpointResult result = read_checkpoint(in);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.line, 4u) << result.error;
  EXPECT_NE(result.error.find("invalid number"), std::string::npos)
      << result.error;
}

TEST(CheckpointFileTest, CheckpointNowPrunesOldAnchorsAndWal) {
  TempDir tmp;
  WalConfig config;
  config.dir = tmp.path;
  config.segment_bytes = kWalHeaderBytes + 4 * kWalRecordBytes;
  config.fsync_on_flush = false;
  WalAppender wal(config);
  StreamEngine engine{DynamicGraph(std::size_t{32})};
  engine.attach(&wal);
  std::vector<std::string> paths;
  for (std::size_t i = 0; i + 1 < 32; ++i) {
    engine.apply(Event::edge_insert(static_cast<VertexId>(i),
                                    static_cast<VertexId>(i + 1)));
    if ((i + 1) % 8 == 0) {
      wal.sync();
      paths.push_back(checkpoint_now(tmp.path, engine, /*keep=*/2));
      ASSERT_FALSE(paths.back().empty());
    }
  }
  // Only the newest two anchors survive; older WAL segments are gone,
  // and what remains still recovers the full state.
  std::size_t checkpoint_files = 0;
  for (const auto& entry : fs::directory_iterator(tmp.path)) {
    checkpoint_files +=
        entry.path().extension() == ".ckpt" && entry.path().string().find(
            ".tmp") == std::string::npos;
  }
  EXPECT_EQ(checkpoint_files, 2u);
  EXPECT_FALSE(fs::exists(paths.front()));
  const RecoverOutcome rec = recover(tmp.path, 32);
  ASSERT_TRUE(rec.ok()) << rec.error;
  EXPECT_EQ(rec.engine->graph().log(), engine.graph().log());
}

// ------------------------------------------------------ WAL crash matrix

TEST(WalCrashMatrixTest, EveryRecordBoundarySurvives) {
  Rng rng(53);
  const auto events = churn_stream(16, 60, rng);
  // Probe one run for the accepted count, then kill at every boundary.
  const WalCrashOutcome probe = run_wal_crash_recovery(
      16, events, std::numeric_limits<std::uint64_t>::max());
  ASSERT_TRUE(probe.ok()) << "durable " << probe.durable << " recovered "
                          << probe.recovered;
  ASSERT_GT(probe.accepted, 0u);
  for (std::size_t k = 0; k <= probe.accepted; ++k) {
    const std::uint64_t cut = kWalHeaderBytes + k * kWalRecordBytes;
    const WalCrashOutcome out = run_wal_crash_recovery(16, events, cut);
    EXPECT_TRUE(out.ok()) << "boundary " << k << ": durable " << out.durable
                          << " recovered " << out.recovered;
    EXPECT_EQ(out.durable, k) << "boundary " << k;
  }
}

TEST(WalCrashMatrixTest, RandomByteOffsetsSurvive) {
  Rng rng(54);
  const auto events = churn_stream(16, 60, rng);
  const WalCrashOutcome probe = run_wal_crash_recovery(
      16, events, std::numeric_limits<std::uint64_t>::max());
  const std::uint64_t file_bytes =
      kWalHeaderBytes + probe.accepted * kWalRecordBytes;
  for (int i = 0; i < 10; ++i) {
    const auto cut = static_cast<std::uint64_t>(
        rng.index(static_cast<std::size_t>(file_bytes) + 1));
    const WalCrashOutcome out = run_wal_crash_recovery(16, events, cut);
    EXPECT_TRUE(out.ok()) << "cut " << cut << ": durable " << out.durable
                          << " recovered " << out.recovered;
  }
}

TEST(WalCrashMatrixTest, CheckpointAnchorsBeatTornWal) {
  // A WAL torn BEFORE the newest checkpoint's epoch: recovery must use
  // the anchor and come back newer than the torn log alone allows.
  Rng rng(55);
  const auto events = churn_stream(16, 80, rng);
  WalCrashOptions options;
  options.checkpoint_every = 20;
  const WalCrashOutcome out = run_wal_crash_recovery(
      16, events, kWalHeaderBytes + 5 * kWalRecordBytes, options);
  EXPECT_TRUE(out.ok()) << "durable " << out.durable << " recovered "
                        << out.recovered;
  EXPECT_GE(out.durable, 20u);
}

TEST(WalCrashMatrixTest, CorruptNewestCheckpointFallsBack) {
  Rng rng(56);
  const auto events = churn_stream(16, 100, rng);
  WalCrashOptions options;
  options.checkpoint_every = 10;  // several anchors, so fallback has one
  options.corrupt_newest_checkpoint = true;
  const WalCrashOutcome out = run_wal_crash_recovery(
      16, events, std::numeric_limits<std::uint64_t>::max(), options);
  EXPECT_TRUE(out.ok()) << "durable " << out.durable << " recovered "
                        << out.recovered;
  // The corrupt anchor was tried and skipped.
  EXPECT_GE(out.checkpoints_tried, 2u);
}

TEST(WalCrashMatrixTest, RecoverAppendRecoverKeepsResumedRecords) {
  // The full production cycle: crash with a torn tail, recover (which
  // repairs the log on disk), resume appending through a fresh
  // WalAppender, crash again, recover again. The second recovery must
  // see the durable prefix PLUS every flushed post-recovery record —
  // without the repair step the old tear would strand the resumed
  // segment behind a non-clean stop and silently drop it.
  const std::size_t n = 16;
  Rng rng(58);
  const auto events = churn_stream(n, 60, rng);
  const auto resume_events = churn_stream(n, 40, rng);

  for (const std::size_t torn_records :
       {std::size_t{0}, std::size_t{3}, std::size_t{7}}) {
    TempDir tmp;
    WalConfig config;
    config.dir = tmp.path;
    config.fsync_on_flush = false;
    std::vector<Event> accepted;
    {
      WalAppender wal(config);
      StreamEngine doomed{DynamicGraph(n)};
      doomed.attach(&wal);
      for (const Event& e : events) doomed.apply(e);
      wal.sync();
      const auto& log = doomed.graph().log();
      accepted.assign(log.begin(), log.end());
    }
    ASSERT_GT(accepted.size(), torn_records);
    // Tear mid-record so exactly `torn_records` full records survive.
    const std::string seg = wal_segment_path(tmp.path);
    fs::resize_file(seg,
                    kWalHeaderBytes + torn_records * kWalRecordBytes + 9);

    RecoverOutcome first = recover(tmp.path, n);
    ASSERT_TRUE(first.ok()) << first.error;
    EXPECT_EQ(first.engine->graph().epoch(), torn_records);
    EXPECT_EQ(first.wal_repair.segments_truncated, 1u);
    // The disk is healed: the segment now ends at the valid prefix.
    EXPECT_EQ(fs::file_size(seg),
              kWalHeaderBytes + torn_records * kWalRecordBytes);

    // Resume: a fresh appender adopts the recovered epoch on attach,
    // so its new segment's first_index extends the healed chain.
    StreamEngine& engine = *first.engine;
    {
      WalAppender wal(config);
      engine.attach(&wal);
      EXPECT_EQ(wal.next_index(), torn_records);
      for (const Event& e : resume_events) engine.apply(e);
      wal.sync();
      engine.detach(&wal);
    }
    ASSERT_GT(engine.graph().epoch(), torn_records);

    RecoverOutcome second = recover(tmp.path, n);
    ASSERT_TRUE(second.ok()) << second.error;
    EXPECT_TRUE(second.wal.clean) << second.wal.detail;
    EXPECT_EQ(second.engine->graph().epoch(), engine.graph().epoch())
        << "torn at " << torn_records;
    EXPECT_EQ(second.engine->graph().log(), engine.graph().log());
    EXPECT_EQ(second.engine->graph().materialize(),
              engine.graph().materialize());

    // Tear the RESUMED segment too: repair heals generation after
    // generation, keeping both the original and the resumed prefix.
    const std::string resumed_seg =
        wal_segment_path(tmp.path, torn_records);
    const std::uint64_t resumed_size = fs::file_size(resumed_seg);
    ASSERT_GE(resumed_size, kWalHeaderBytes + kWalRecordBytes);
    fs::resize_file(resumed_seg, resumed_size - 4);
    RecoverOutcome third = recover(tmp.path, n);
    ASSERT_TRUE(third.ok()) << third.error;
    EXPECT_EQ(third.engine->graph().epoch(), engine.graph().epoch() - 1);
  }
}

TEST(WalCrashMatrixTest, RecoveryEmitsMetrics) {
  auto& registry = obs::MetricsRegistry::global();
  const std::uint64_t runs_before =
      registry.snapshot().counter_value("fault.recover.runs");
  Rng rng(57);
  const auto events = churn_stream(16, 40, rng);
  const WalCrashOutcome out = run_wal_crash_recovery(
      16, events, std::numeric_limits<std::uint64_t>::max());
  EXPECT_TRUE(out.ok());
  const auto snap = registry.snapshot();
  EXPECT_GT(snap.counter_value("fault.recover.runs"), runs_before);
  EXPECT_GT(snap.counter_value("fault.wal.appends"), 0u);
  EXPECT_GT(snap.counter_value("fault.wal.scan.runs"), 0u);
}

// ---------------------------------------------------------- percolation

TEST(PercolationTest, CurveShapeAndEndpoints) {
  Rng rng(3);
  const Graph g = erdos_renyi(120, 0.06, rng);
  const PercolationCurve curve =
      percolation_curve(g, RemovalOrder::kRandom, /*seed=*/8, /*samples=*/12);
  ASSERT_GE(curve.removed.size(), 2u);
  ASSERT_EQ(curve.removed.size(), curve.largest_component.size());
  ASSERT_EQ(curve.removed.size(), curve.nsf_survivors.size());
  ASSERT_EQ(curve.removed.size(), curve.fraction_removed.size());
  EXPECT_EQ(curve.removed.front(), 0u);
  EXPECT_EQ(curve.removed.back(), g.vertex_count());
  EXPECT_EQ(curve.fraction_removed.back(), 1.0);
  EXPECT_GT(curve.largest_component.front(), 0u);
  EXPECT_EQ(curve.largest_component.back(), 0u);  // nobody left
  EXPECT_EQ(curve.nsf_survivors.back(), 0u);
  // Removing vertices can only shrink the largest component.
  for (std::size_t i = 1; i < curve.largest_component.size(); ++i) {
    EXPECT_LE(curve.largest_component[i], curve.largest_component[i - 1]);
  }
}

TEST(PercolationTest, TargetedRemovalBeatsRandom) {
  Rng rng(19);
  const auto seq = power_law_degree_sequence(300, 2.5, 2, 40, rng);
  const Graph g = configuration_model(seq, rng);

  const PercolationCurve random =
      percolation_curve(g, RemovalOrder::kRandom, 5, 15);
  const PercolationCurve degree =
      percolation_curve(g, RemovalOrder::kDegree, 5, 15);
  const PercolationCurve core = percolation_curve(g, RemovalOrder::kCore, 5, 15);
  ASSERT_EQ(degree.removed, random.removed);  // same sampling grid
  ASSERT_EQ(core.removed, random.removed);

  // Hub-targeted attacks dissolve the giant component at least as fast
  // as random failures at every sampled removal count (area test on a
  // scale-free substrate, the paper's robustness contrast).
  std::size_t random_area = 0, degree_area = 0, core_area = 0;
  for (std::size_t i = 0; i < random.removed.size(); ++i) {
    random_area += random.largest_component[i];
    degree_area += degree.largest_component[i];
    core_area += core.largest_component[i];
  }
  EXPECT_LT(degree_area, random_area);
  EXPECT_LT(core_area, random_area);

  EXPECT_EQ(to_string(RemovalOrder::kRandom), "random");
  EXPECT_EQ(to_string(RemovalOrder::kDegree), "degree");
  EXPECT_EQ(to_string(RemovalOrder::kCore), "core");
}

TEST(PercolationTest, RandomOrderIsSeedDeterministic) {
  Rng rng(23);
  const Graph g = erdos_renyi(80, 0.08, rng);
  const PercolationCurve a = percolation_curve(g, RemovalOrder::kRandom, 42, 10);
  const PercolationCurve b = percolation_curve(g, RemovalOrder::kRandom, 42, 10);
  EXPECT_EQ(a.largest_component, b.largest_component);
  EXPECT_EQ(a.nsf_survivors, b.nsf_survivors);
  const PercolationCurve c = percolation_curve(g, RemovalOrder::kRandom, 43, 10);
  EXPECT_NE(a.largest_component, c.largest_component);  // seed matters
}

}  // namespace
}  // namespace structnet
