// Observability layer tests: metrics registry (counters under
// contention, histogram bucket geometry, nearest-rank quantiles,
// snapshot lookups, JSON emission) and the tracing layer (span nesting,
// bounded sink, Chrome export shape, aggregates).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace structnet::obs {
namespace {

// ------------------------------------------------------------- counters

TEST(ObsCounterTest, AddAndValue) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(ObsCounterTest, ConcurrentIncrementsSumExactly) {
  constexpr std::size_t kThreads = 8;
  constexpr std::uint64_t kPerThread = 50'000;
  MetricsRegistry reg;
  Counter& c = reg.counter("contended");
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.add();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
}

TEST(ObsGaugeTest, SetAddValue) {
  Gauge g;
  g.set(7);
  g.add(-10);
  EXPECT_EQ(g.value(), -3);
}

// ------------------------------------------------- histogram bucket map

TEST(ObsHistogramTest, BucketBoundaries) {
  // bucket i holds [2^i, 2^(i+1)); bucket 0 also holds 0.
  struct Case {
    std::uint64_t value;
    std::size_t bucket;
  };
  const Case cases[] = {
      {0, 0},
      {1, 0},
      {2, 1},
      {3, 1},
      {4, 2},
      {7, 2},
      {8, 3},
      {(std::uint64_t{1} << 38) - 1, 37},
      {std::uint64_t{1} << 38, 38},
      // At and above 2^39 everything saturates into the last bucket.
      {std::uint64_t{1} << 39, kHistogramBuckets - 1},
      {std::uint64_t{1} << 63, kHistogramBuckets - 1},
      {std::numeric_limits<std::uint64_t>::max(), kHistogramBuckets - 1},
  };
  for (const Case& c : cases) {
    EXPECT_EQ(histogram_bucket(c.value), c.bucket) << "value=" << c.value;
  }
  // Edges: exclusive upper bound of each non-saturated bucket.
  EXPECT_EQ(histogram_bucket_edge(0), 2u);
  EXPECT_EQ(histogram_bucket_edge(3), 16u);
}

TEST(ObsHistogramTest, SaturatedSamplesAreClampedNotDropped) {
  Histogram h;
  h.record(std::numeric_limits<std::uint64_t>::max());
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 1u);
  EXPECT_EQ(s.buckets[kHistogramBuckets - 1], 1u);
  EXPECT_EQ(s.max, std::numeric_limits<std::uint64_t>::max());
}

// ------------------------------------------------ nearest-rank quantile

TEST(ObsQuantileTest, EmptyHistogramIsZero) {
  Histogram h;
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.quantile_upper(0.0), 0u);
  EXPECT_EQ(s.quantile_upper(0.5), 0u);
  EXPECT_EQ(s.quantile_upper(0.99), 0u);
  EXPECT_EQ(s.quantile_upper(1.0), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(ObsQuantileTest, SingleSampleEveryQuantileBoundsIt) {
  Histogram h;
  h.record(100);  // bucket 6: [64, 128)
  const HistogramSnapshot s = h.snapshot();
  // max tightens the bucket edge (128) down to the recorded sample.
  EXPECT_EQ(s.quantile_upper(0.0), 100u);
  EXPECT_EQ(s.quantile_upper(0.5), 100u);
  EXPECT_EQ(s.quantile_upper(0.99), 100u);
  EXPECT_EQ(s.quantile_upper(1.0), 100u);
  EXPECT_GE(s.quantile_upper(0.5), 100u);  // must bound the sample
}

TEST(ObsQuantileTest, NearestRankIsCeilNotFloor) {
  // 100 samples: one in bucket 0 (value 1), 98 in bucket 4 (16..31),
  // one in bucket 10 (1024..2047). The 99th order statistic lives in
  // bucket 4, so p99 must be bounded by bucket 4's edge (32) — the
  // legacy floor-rank bug put rank 100 (bucket 10) here instead.
  Histogram h;
  h.record(1);
  for (int i = 0; i < 98; ++i) h.record(20);
  h.record(1500);
  const HistogramSnapshot s = h.snapshot();
  ASSERT_EQ(s.count, 100u);
  EXPECT_LE(s.quantile_upper(0.99), 32u);
  // p100 (and anything landing on the last sample) is the true max.
  EXPECT_EQ(s.quantile_upper(1.0), 1500u);
  // p01 is rank ceil(0.01 * 100) = 1 -> the bucket-0 sample, edge 2,
  // not tightened below by max (1500 > 2).
  EXPECT_LE(s.quantile_upper(0.01), 2u);
}

TEST(ObsQuantileTest, RankInSaturatedBucketReturnsRecordedMax) {
  // Samples clamped into the open-ended last bucket may exceed its
  // nominal edge; the only honest bound is the recorded max.
  Histogram h;
  const std::uint64_t huge = std::uint64_t{1} << 50;
  for (int i = 0; i < 4; ++i) h.record(huge);
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.quantile_upper(0.99), huge);
  EXPECT_EQ(s.quantile_upper(0.5), huge);
}

TEST(ObsQuantileTest, QuantilesAreMonotoneInQ) {
  Histogram h;
  for (std::uint64_t v = 1; v <= 1000; ++v) h.record(v * 7);
  const HistogramSnapshot s = h.snapshot();
  std::uint64_t prev = 0;
  for (double q = 0.0; q <= 1.0; q += 0.05) {
    const std::uint64_t cur = s.quantile_upper(q);
    EXPECT_GE(cur, prev) << "q=" << q;
    prev = cur;
  }
}

// ------------------------------------------------------------- registry

TEST(ObsRegistryTest, SameNameReturnsSameMetric) {
  MetricsRegistry reg;
  Counter& a = reg.counter("x");
  Counter& b = reg.counter("x");
  EXPECT_EQ(&a, &b);
  a.add(3);
  EXPECT_EQ(b.value(), 3u);
  // Distinct kinds share a namespace-free map each; same name is fine.
  Gauge& g = reg.gauge("x");
  g.set(-1);
  EXPECT_EQ(reg.gauge("x").value(), -1);
}

TEST(ObsRegistryTest, SnapshotLookupsAndSorting) {
  MetricsRegistry reg;
  reg.counter("b.two").add(2);
  reg.counter("a.one").add(1);
  reg.gauge("depth").set(-5);
  reg.histogram("lat").record(100);
  const MetricsRegistry::Snapshot s = reg.snapshot();
  ASSERT_EQ(s.counters.size(), 2u);
  EXPECT_EQ(s.counters[0].first, "a.one");  // name-sorted
  EXPECT_EQ(s.counter_value("b.two"), 2u);
  EXPECT_EQ(s.counter_value("missing"), 0u);
  EXPECT_EQ(s.gauge_value("depth"), -5);
  ASSERT_NE(s.histogram_snapshot("lat"), nullptr);
  EXPECT_EQ(s.histogram_snapshot("lat")->count, 1u);
  EXPECT_EQ(s.histogram_snapshot("missing"), nullptr);
}

TEST(ObsRegistryTest, ConcurrentRegistrationAndUpdates) {
  MetricsRegistry reg;
  constexpr std::size_t kThreads = 8;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg, t] {
      // Half the threads hammer a shared counter, half register fresh
      // names while snapshots run — registration vs update vs snapshot
      // must be race-free (TSan covers this in the sanitizer pass).
      Counter& shared = reg.counter("shared");
      for (int i = 0; i < 2'000; ++i) {
        shared.add();
        if (i % 512 == 0) {
          reg.counter("t" + std::to_string(t) + "." + std::to_string(i))
              .add();
          (void)reg.snapshot();
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(reg.snapshot().counter_value("shared"), kThreads * 2'000u);
}

TEST(ObsRegistryTest, EmitJsonLinesAreWellFormed) {
  MetricsRegistry reg;
  reg.counter("events").add(7);
  reg.gauge("depth").set(3);
  reg.histogram("lat").record(1000);
  std::ostringstream os;
  reg.emit_json(os, "test");
  const std::string out = os.str();
  std::size_t lines = 0;
  std::istringstream is(out);
  for (std::string line; std::getline(is, line);) {
    ++lines;
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"metrics\": \"test\""), std::string::npos) << line;
    EXPECT_NE(line.find("\"name\": "), std::string::npos) << line;
  }
  EXPECT_EQ(lines, 3u);
  EXPECT_NE(out.find("\"type\": \"counter\""), std::string::npos);
  EXPECT_NE(out.find("\"type\": \"gauge\""), std::string::npos);
  EXPECT_NE(out.find("\"type\": \"histogram\""), std::string::npos);
}

// -------------------------------------------------------------- tracing

#if STRUCTNET_OBS_ENABLED

TEST(ObsTraceTest, NoSinkMeansNoRecording) {
  TraceSink::uninstall();
  EXPECT_FALSE(trace_enabled());
  { STRUCTNET_OBS_SPAN("orphan"); }
  TraceSink sink;
  sink.install();
  EXPECT_TRUE(trace_enabled());
  TraceSink::uninstall();
  EXPECT_FALSE(trace_enabled());
  EXPECT_EQ(sink.size(), 0u);
}

TEST(ObsTraceTest, SpansNestWithDepths) {
  TraceSink sink;
  sink.install();
  {
    STRUCTNET_OBS_SPAN("outer");
    {
      STRUCTNET_OBS_SPAN("middle");
      { STRUCTNET_OBS_SPAN("inner"); }
    }
  }
  TraceSink::uninstall();
  const std::vector<TraceEvent> events = sink.events();
  ASSERT_EQ(events.size(), 3u);
  // Spans complete innermost-first.
  EXPECT_STREQ(events[0].name, "inner");
  EXPECT_EQ(events[0].depth, 2u);
  EXPECT_STREQ(events[1].name, "middle");
  EXPECT_EQ(events[1].depth, 1u);
  EXPECT_STREQ(events[2].name, "outer");
  EXPECT_EQ(events[2].depth, 0u);
  // Time containment: outer starts no later and ends no earlier.
  EXPECT_LE(events[2].start_ns, events[0].start_ns);
  EXPECT_GE(events[2].start_ns + events[2].dur_ns,
            events[0].start_ns + events[0].dur_ns);
  // All on one thread.
  EXPECT_EQ(events[0].tid, events[2].tid);
}

TEST(ObsTraceTest, SinkIsBoundedAndCountsDrops) {
  TraceSink sink(/*max_events=*/10);
  sink.install();
  for (int i = 0; i < 600; ++i) {  // > buffer flush threshold + cap
    STRUCTNET_OBS_SPAN("tick");
  }
  TraceSink::uninstall();
  EXPECT_LE(sink.size(), 10u);
  EXPECT_GT(sink.dropped(), 0u);
}

TEST(ObsTraceTest, ChromeTraceJsonShape) {
  TraceSink sink;
  sink.install();
  {
    STRUCTNET_OBS_SPAN("alpha");
    STRUCTNET_OBS_SPAN("beta");
  }
  TraceSink::uninstall();
  const std::string json = sink.chrome_trace_json();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"alpha\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"beta\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\":"), std::string::npos);
}

TEST(ObsTraceTest, AggregateStatsPerName) {
  TraceSink sink;
  sink.install();
  for (int i = 0; i < 5; ++i) {
    STRUCTNET_OBS_SPAN("repeat");
  }
  { STRUCTNET_OBS_SPAN("once"); }
  TraceSink::uninstall();
  const std::vector<SpanStats> agg = sink.aggregate();
  ASSERT_EQ(agg.size(), 2u);  // name-sorted: "once" < "repeat"
  EXPECT_EQ(agg[0].name, "once");
  EXPECT_EQ(agg[0].count, 1u);
  EXPECT_EQ(agg[1].name, "repeat");
  EXPECT_EQ(agg[1].count, 5u);
  EXPECT_GE(agg[1].total_ns, agg[1].max_ns);
}

TEST(ObsTraceTest, MultiThreadedSpansLandInOneSink) {
  TraceSink sink;
  sink.install();
  constexpr std::size_t kThreads = 4;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < 50; ++i) {
        STRUCTNET_OBS_SPAN("worker");
      }
    });
  }
  for (std::thread& t : threads) t.join();
  TraceSink::uninstall();
  EXPECT_EQ(sink.size(), kThreads * 50u);
  // Distinct threads get distinct tids.
  std::vector<TraceEvent> events = sink.events();
  std::vector<std::uint32_t> tids;
  for (const TraceEvent& e : events) tids.push_back(e.tid);
  std::sort(tids.begin(), tids.end());
  tids.erase(std::unique(tids.begin(), tids.end()), tids.end());
  EXPECT_EQ(tids.size(), kThreads);
}

#endif  // STRUCTNET_OBS_ENABLED

}  // namespace
}  // namespace structnet::obs
