// Tests for contact-trace IO and the multi-message simulator with
// buffer contention.
#include <gtest/gtest.h>

#include <sstream>

#include "mobility/social_contacts.hpp"
#include "sim/multi_message.hpp"
#include "temporal/fig2_example.hpp"
#include "temporal/journeys.hpp"
#include "temporal/trace_io.hpp"

namespace structnet {
namespace {

TEST(TraceIo, RoundTrip) {
  const auto eg = fig2::build();
  std::stringstream ss;
  write_contact_trace(ss, eg);
  const auto back = read_contact_trace(ss);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->vertex_count(), eg.vertex_count());
  EXPECT_EQ(back->horizon(), eg.horizon());
  EXPECT_EQ(back->edge_count(), eg.edge_count());
  for (const auto& edge : eg.edges()) {
    for (TimeUnit t : edge.labels) {
      EXPECT_TRUE(back->has_contact(edge.u, edge.v, t));
    }
  }
}

TEST(TraceIo, RejectsMalformed) {
  std::stringstream bad1("3 5 1\n0 9 2\n");  // vertex out of range
  EXPECT_FALSE(read_contact_trace(bad1).has_value());
  std::stringstream bad2("3 5 1\n0 1 7\n");  // time beyond horizon
  EXPECT_FALSE(read_contact_trace(bad2).has_value());
  std::stringstream bad3("3 5 1\n1 1 2\n");  // self contact
  EXPECT_FALSE(read_contact_trace(bad3).has_value());
  std::stringstream bad4("3 5 2\n0 1 2\n");  // truncated
  EXPECT_FALSE(read_contact_trace(bad4).has_value());
}

// The line-oriented parser pinpoints malformed input: 1-based line
// number plus a reason (the optional-returning shim above stays).
TEST(TraceIo, ParseResultReportsLineAndReason) {
  const struct {
    const char* name;
    const char* text;
    std::size_t line;
    const char* error_contains;
  } cases[] = {
      {"empty", "", 1, "missing header"},
      {"short header", "3 5\n", 1, "header"},
      {"junk header", "3 x 1\n", 1, "invalid number"},
      {"header overflow", "3 99999999999 1\n0 1 2\n", 1, "horizon"},
      {"trailing field", "3 5 1 9\n0 1 2\n", 1, "trailing data"},
      {"vertex out of range", "3 5 1\n0 9 2\n", 2, "vertex out of range"},
      {"self contact", "3 5 1\n1 1 2\n", 2, "self contact"},
      {"time beyond horizon", "3 5 1\n0 1 7\n", 2, "time beyond horizon"},
      {"truncated", "3 5 2\n0 1 2\n", 3, "truncated"},
      {"junk contact", "3 5 1\n0 1 x\n", 2, "invalid number"},
  };
  for (const auto& c : cases) {
    std::stringstream in(c.text);
    const TraceParseResult result = parse_contact_trace(in);
    EXPECT_FALSE(result.ok()) << c.name;
    EXPECT_EQ(result.line, c.line) << c.name << ": " << result.error;
    EXPECT_NE(result.error.find(c.error_contains), std::string::npos)
        << c.name << ": got '" << result.error << "'";
  }

  // Success path: blank lines tolerated, (line, error) reset.
  std::stringstream good("3 5 2\n\n0 1 2\n0 2 4\n");
  const TraceParseResult result = parse_contact_trace(good);
  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_EQ(result.line, 0u);
  EXPECT_TRUE(result.error.empty());
  EXPECT_TRUE(result.graph->has_contact(0, 1, 2));
  EXPECT_TRUE(result.graph->has_contact(0, 2, 4));
}

TemporalGraph chain_trace() {
  TemporalGraph eg(4, 12);
  eg.add_contact(0, 1, 1);
  eg.add_contact(1, 2, 3);
  eg.add_contact(2, 3, 5);
  eg.add_contact(0, 3, 9);
  return eg;
}

TEST(MultiMessage, SingleMessageMatchesSingleSimulator) {
  const auto trace = chain_trace();
  const std::vector<MessageSpec> msgs{{0, 3, 0}};
  const auto multi =
      simulate_workload(trace, msgs, epidemic_strategy(), 0, 0);
  const auto single = simulate_routing(trace, 0, 3, 0, epidemic_strategy(), 0);
  EXPECT_EQ(multi.delivered, 1u);
  EXPECT_DOUBLE_EQ(multi.average_delay,
                   static_cast<double>(single.delivery_time));
}

TEST(MultiMessage, UnlimitedBuffersNeverDrop) {
  Rng rng(1);
  SocialTraceParams p;
  p.people = 20;
  p.horizon = 150;
  const auto profiles = random_profiles(p.people, p.radices, rng);
  const auto trace = social_contact_trace(p, profiles, rng);
  std::vector<MessageSpec> msgs;
  Rng pick(2);
  for (int i = 0; i < 20; ++i) {
    msgs.push_back({static_cast<VertexId>(pick.index(20)),
                    static_cast<VertexId>(pick.index(20)),
                    static_cast<TimeUnit>(pick.index(30))});
  }
  const auto r = simulate_workload(trace, msgs, epidemic_strategy(), 0, 0);
  EXPECT_EQ(r.drops, 0u);
  EXPECT_GT(r.delivery_ratio(), 0.9);
}

TEST(MultiMessage, TinyBuffersDropAndHurtEpidemic) {
  Rng rng(3);
  SocialTraceParams p;
  p.people = 24;
  p.horizon = 120;
  p.base_rate = 0.15;
  const auto profiles = random_profiles(p.people, p.radices, rng);
  const auto trace = social_contact_trace(p, profiles, rng);
  std::vector<MessageSpec> msgs;
  Rng pick(4);
  for (int i = 0; i < 30; ++i) {
    const auto s = static_cast<VertexId>(pick.index(24));
    const auto d = static_cast<VertexId>(pick.index(24));
    if (s == d) continue;
    msgs.push_back({s, d, 0});
  }
  const auto roomy = simulate_workload(trace, msgs, epidemic_strategy(), 0, 0);
  const auto tight = simulate_workload(trace, msgs, epidemic_strategy(), 0, 2);
  EXPECT_GT(tight.drops, 0u);
  EXPECT_LE(tight.delivery_ratio(), roomy.delivery_ratio());
  EXPECT_LT(tight.transmissions, roomy.transmissions);
}

TEST(MultiMessage, DirectTrafficUnaffectedByBuffers) {
  // Direct delivery keeps exactly one copy (at the source, which always
  // buffers its own), so buffer pressure never bites.
  Rng rng(5);
  SocialTraceParams p;
  p.people = 20;
  p.horizon = 200;
  const auto profiles = random_profiles(p.people, p.radices, rng);
  const auto trace = social_contact_trace(p, profiles, rng);
  std::vector<MessageSpec> msgs;
  Rng pick(6);
  for (int i = 0; i < 20; ++i) {
    const auto s = static_cast<VertexId>(pick.index(20));
    const auto d = static_cast<VertexId>(pick.index(20));
    if (s == d) continue;
    msgs.push_back({s, d, 0});
  }
  const auto roomy = simulate_workload(trace, msgs, direct_strategy(), 1, 0);
  const auto tight = simulate_workload(trace, msgs, direct_strategy(), 1, 1);
  EXPECT_EQ(roomy.delivered, tight.delivered);
  EXPECT_EQ(tight.drops, 0u);
}

TEST(MultiMessage, DeliveredCopiesFreeBuffers) {
  // After delivery, the buffers are released: a second message can use
  // the same tight buffer later.
  TemporalGraph eg(3, 10);
  eg.add_contact(0, 1, 1);
  eg.add_contact(1, 2, 2);
  eg.add_contact(0, 1, 5);
  eg.add_contact(1, 2, 6);
  const std::vector<MessageSpec> msgs{{0, 2, 0}, {0, 2, 4}};
  const auto r = simulate_workload(eg, msgs, epidemic_strategy(), 0, 1);
  EXPECT_EQ(r.delivered, 2u);
  EXPECT_EQ(r.drops, 0u);
}

TEST(MultiMessage, StaggeredCreationTimes) {
  const auto trace = chain_trace();
  // Created after the relay chain has passed: only the direct contact at
  // t=9 can deliver.
  const std::vector<MessageSpec> late{{0, 3, 4}};
  const auto r = simulate_workload(trace, late, epidemic_strategy(), 0, 0);
  EXPECT_EQ(r.delivered, 1u);
  EXPECT_DOUBLE_EQ(r.average_delay, 5.0);  // 9 - 4
}

}  // namespace
}  // namespace structnet
