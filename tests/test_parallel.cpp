// Parallel execution layer: ThreadPool / parallel_for / parallel_reduce
// mechanics, and — the load-bearing guarantee — bit-identical results at
// any thread count for every kernel converted to the layer.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <numeric>
#include <set>
#include <stdexcept>
#include <vector>

#include "core/generators.hpp"
#include "layering/nsf.hpp"
#include "mobility/edge_markovian.hpp"
#include "parallel/parallel.hpp"
#include "sim/dtn_routing.hpp"
#include "sim/multi_message.hpp"
#include "stream/engine.hpp"
#include "stream/observers.hpp"
#include "temporal/smallworld_metrics.hpp"
#include "temporal/temporal_centrality.hpp"
#include "util/rng.hpp"

namespace structnet {
namespace {

// ------------------------------------------------- pool mechanics

TEST(ThreadPoolTest, EmptyAndReversedRangesAreNoops) {
  std::atomic<int> calls{0};
  parallel_for(0, 0, 4, [&](std::size_t) { ++calls; }, 8);
  parallel_for(10, 10, 4, [&](std::size_t) { ++calls; }, 8);
  parallel_for(10, 5, 4, [&](std::size_t) { ++calls; }, 8);
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPoolTest, VisitsEveryIndexExactlyOnce) {
  const std::size_t n = 1000;
  std::vector<int> hits(n, 0);
  parallel_for(0, n, 7, [&](std::size_t i) { ++hits[i]; }, 8);
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0),
            static_cast<int>(n));
  EXPECT_EQ(*std::min_element(hits.begin(), hits.end()), 1);
}

TEST(ThreadPoolTest, GrainZeroAndOversizedGrainWork) {
  std::atomic<std::size_t> sum{0};
  parallel_for(0, 100, 0, [&](std::size_t i) { sum += i; }, 4);
  EXPECT_EQ(sum.load(), 4950u);
  sum = 0;
  parallel_for(0, 100, 1000, [&](std::size_t i) { sum += i; }, 4);
  EXPECT_EQ(sum.load(), 4950u);
}

TEST(ThreadPoolTest, ShardBoundariesIndependentOfThreadCount) {
  auto boundaries = [](std::size_t threads) {
    std::vector<std::pair<std::size_t, std::size_t>> out(shard_count(103, 9));
    parallel_for_shards(0, 103, 9, threads,
                        [&](std::size_t shard, std::size_t lo, std::size_t hi,
                            std::size_t) { out[shard] = {lo, hi}; });
    return out;
  };
  const auto serial = boundaries(1);
  EXPECT_EQ(serial, boundaries(2));
  EXPECT_EQ(serial, boundaries(8));
  for (std::size_t s = 1; s < serial.size(); ++s) {
    EXPECT_EQ(serial[s - 1].second, serial[s].first);
  }
  EXPECT_EQ(serial.front().first, 0u);
  EXPECT_EQ(serial.back().second, 103u);
}

TEST(ThreadPoolTest, WorkerIndicesStayWithinThreadCount) {
  const std::size_t threads = 4;
  std::vector<std::size_t> seen(shard_count(64, 1));
  parallel_for_shards(0, 64, 1, threads,
                      [&](std::size_t shard, std::size_t, std::size_t,
                          std::size_t worker) { seen[shard] = worker; });
  for (const std::size_t w : seen) EXPECT_LT(w, threads);
}

TEST(ThreadPoolTest, NestedWorkerIndicesStayWithinNestedThreadCount) {
  // A nested loop runs inline on the enclosing pool's worker, whose
  // slot can exceed the nested call's own thread count. The nested
  // body must still see worker < resolve_threads(its threads), or
  // worker-indexed workspace vectors sized by that count overflow.
  std::atomic<bool> ok{true};
  parallel_for(
      0, 16, 1,
      [&](std::size_t) {
        parallel_for_shards(0, 8, 1, 1,
                            [&](std::size_t, std::size_t, std::size_t,
                                std::size_t worker) {
                              if (worker != 0) ok = false;
                            });
      },
      8);
  EXPECT_TRUE(ok.load());
}

TEST(ThreadPoolTest, NestedParallelForRunsInlineAndCorrectly) {
  const std::size_t n = 16;
  std::vector<std::size_t> inner_sums(n, 0);
  parallel_for(
      0, n, 1,
      [&](std::size_t i) {
        std::size_t sum = 0;
        // Nested: must not deadlock; degrades to the serial inline path.
        parallel_for(0, 100, 8, [&](std::size_t j) { sum += j; }, 8);
        inner_sums[i] = sum;
      },
      8);
  for (const std::size_t s : inner_sums) EXPECT_EQ(s, 4950u);
}

TEST(ThreadPoolTest, ExceptionsPropagateToCaller) {
  auto throwing = [](std::size_t i) {
    if (i == 37) throw std::runtime_error("shard failure");
  };
  EXPECT_THROW(parallel_for(0, 64, 1, throwing, 4), std::runtime_error);
  EXPECT_THROW(parallel_for(0, 64, 1, throwing, 1), std::runtime_error);
  // The pool survives a failed job and keeps executing new ones.
  std::atomic<std::size_t> ok{0};
  parallel_for(0, 64, 1, [&](std::size_t) { ++ok; }, 4);
  EXPECT_EQ(ok.load(), 64u);
}

TEST(ThreadPoolTest, ReduceFoldsInShardOrder) {
  // Concatenating shard ids is order-sensitive: any out-of-order fold
  // (or thread-count dependence) changes the result.
  auto concat = [](std::size_t threads) {
    return parallel_reduce<std::vector<std::size_t>>(
        0, 40, 3, {},
        [](std::size_t lo, std::size_t hi) {
          return std::vector<std::size_t>{lo, hi};
        },
        [](std::vector<std::size_t> acc, std::vector<std::size_t> p) {
          acc.insert(acc.end(), p.begin(), p.end());
          return acc;
        },
        threads);
  };
  const auto serial = concat(1);
  EXPECT_EQ(serial, concat(2));
  EXPECT_EQ(serial, concat(8));
}

TEST(ThreadPoolTest, ResolveThreadsHonorsOverride) {
  set_default_thread_count(3);
  EXPECT_EQ(resolve_threads(0), 3u);
  EXPECT_EQ(resolve_threads(7), 7u);
  set_default_thread_count(0);
  EXPECT_GE(resolve_threads(0), 1u);
}

// ------------------------------------------------- rng splitting

TEST(RngSplitTest, ChildStreamsIgnoreParentDrawHistory) {
  Rng fresh(99);
  Rng used(99);
  for (int i = 0; i < 17; ++i) used.uniform01();
  Rng a = fresh.split(5);
  Rng b = used.split(5);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(a.uniform01(), b.uniform01());
}

TEST(RngSplitTest, DistinctStreamsDecorrelate) {
  std::set<std::uint64_t> seeds;
  for (std::uint64_t s = 0; s < 64; ++s) seeds.insert(derive_seed(123, s));
  EXPECT_EQ(seeds.size(), 64u);
  EXPECT_NE(derive_seed(123, 0), derive_seed(124, 0));
}

// ------------------------------------------------- kernel determinism

TemporalGraph test_trace(std::size_t nodes, TimeUnit horizon,
                         std::uint64_t seed) {
  Rng rng(seed);
  EdgeMarkovianParams p;
  p.nodes = nodes;
  p.horizon = horizon;
  p.birth_probability = 0.08;
  p.death_probability = 0.4;
  return edge_markovian_graph(p, rng);
}

TEST(ParallelDeterminism, TemporalPathLengthBitIdentical) {
  const auto eg = test_trace(48, 24, 11);
  const auto serial = characteristic_temporal_path_length(eg, 1);
  for (const std::size_t threads : {2, 8}) {
    const auto par = characteristic_temporal_path_length(eg, threads);
    EXPECT_EQ(serial.characteristic_length, par.characteristic_length);
    EXPECT_EQ(serial.reachable_fraction, par.reachable_fraction);
  }
  EXPECT_GT(serial.reachable_fraction, 0.0);
}

TEST(ParallelDeterminism, TemporalCentralitiesBitIdentical) {
  const auto eg = test_trace(40, 20, 13);
  const auto close1 = temporal_closeness(eg, 1);
  const auto betw1 = temporal_betweenness(eg, 1);
  for (const std::size_t threads : {2, 8}) {
    EXPECT_EQ(close1, temporal_closeness(eg, threads));
    EXPECT_EQ(betw1, temporal_betweenness(eg, threads));
  }
  EXPECT_GT(*std::max_element(betw1.begin(), betw1.end()), 0.0);
}

TEST(ParallelDeterminism, RoutingTrialsBitIdentical) {
  const auto eg = test_trace(32, 30, 17);
  SimulationFaults faults;
  faults.loss_probability = 0.3;
  faults.loss_seed = 77;
  const auto run = [&](std::size_t threads) {
    return simulate_routing_trials(eg, 0, 31, 0, epidemic_strategy(), 1,
                                   faults, 48, threads);
  };
  const auto serial = run(1);
  ASSERT_EQ(serial.outcomes.size(), 48u);
  for (const std::size_t threads : {2, 8}) {
    const auto par = run(threads);
    EXPECT_EQ(serial.delivered, par.delivered);
    EXPECT_EQ(serial.delivery_ratio, par.delivery_ratio);
    EXPECT_EQ(serial.mean_delivery_time, par.mean_delivery_time);
    EXPECT_EQ(serial.mean_transmissions, par.mean_transmissions);
    for (std::size_t i = 0; i < serial.outcomes.size(); ++i) {
      EXPECT_EQ(serial.outcomes[i].delivered, par.outcomes[i].delivered);
      EXPECT_EQ(serial.outcomes[i].delivery_time,
                par.outcomes[i].delivery_time);
      EXPECT_EQ(serial.outcomes[i].transmissions,
                par.outcomes[i].transmissions);
      EXPECT_EQ(serial.outcomes[i].copies, par.outcomes[i].copies);
      EXPECT_EQ(serial.outcomes[i].hops, par.outcomes[i].hops);
    }
  }
  // Losses actually bite: not every replica should match the lossless
  // run. Epidemic spreading can saturate (same final transmission count
  // either way), but losses at least delay delivery in some trials.
  const auto lossless =
      simulate_routing(eg, 0, 31, 0, epidemic_strategy(), 1, {});
  bool any_differs = false;
  for (const auto& o : serial.outcomes) {
    if (o.transmissions != lossless.transmissions ||
        o.delivery_time != lossless.delivery_time ||
        o.delivered != lossless.delivered || o.hops != lossless.hops) {
      any_differs = true;
    }
  }
  EXPECT_TRUE(any_differs);
}

TEST(ParallelDeterminism, WorkloadEnsembleBitIdentical) {
  const auto eg = test_trace(28, 26, 19);
  const auto run = [&](std::size_t threads) {
    return simulate_workload_ensemble(eg, 6, 12, 55, epidemic_strategy(), 0,
                                      3, threads);
  };
  const auto serial = run(1);
  ASSERT_EQ(serial.outcomes.size(), 12u);
  for (const std::size_t threads : {2, 8}) {
    const auto par = run(threads);
    EXPECT_EQ(serial.mean_delivery_ratio, par.mean_delivery_ratio);
    EXPECT_EQ(serial.mean_delay, par.mean_delay);
    EXPECT_EQ(serial.mean_transmissions, par.mean_transmissions);
    EXPECT_EQ(serial.mean_drops, par.mean_drops);
    for (std::size_t i = 0; i < serial.outcomes.size(); ++i) {
      EXPECT_EQ(serial.outcomes[i].delivered, par.outcomes[i].delivered);
      EXPECT_EQ(serial.outcomes[i].transmissions,
                par.outcomes[i].transmissions);
      EXPECT_EQ(serial.outcomes[i].drops, par.outcomes[i].drops);
      EXPECT_EQ(serial.outcomes[i].message_delivered,
                par.outcomes[i].message_delivered);
    }
  }
}

TEST(ParallelDeterminism, NsfReportBitIdentical) {
  Rng rng(23);
  const Graph g = barabasi_albert(600, 3, rng);
  const auto serial = nsf_report(g, 0.5, 0.15, 1);
  for (const std::size_t threads : {2, 8}) {
    const auto par = nsf_report(g, 0.5, 0.15, threads);
    EXPECT_EQ(serial.sizes, par.sizes);
    EXPECT_EQ(serial.all_scale_free, par.all_scale_free);
    EXPECT_EQ(serial.exponent_stddev, par.exponent_stddev);
    ASSERT_EQ(serial.fits.size(), par.fits.size());
    for (std::size_t r = 0; r < serial.fits.size(); ++r) {
      EXPECT_EQ(serial.fits[r].alpha, par.fits[r].alpha);
      EXPECT_EQ(serial.fits[r].ks, par.fits[r].ks);
    }
  }
  EXPECT_GT(serial.fits.size(), 1u);
}

TEST(ParallelDeterminism, StreamRecomputeAllMatchesSerial) {
  Rng rng(29);
  const Graph g = barabasi_albert(200, 2, rng);
  auto churn = [&](StreamEngine& engine) {
    Rng churn_rng(31);
    for (int i = 0; i < 400; ++i) {
      const auto u = static_cast<VertexId>(churn_rng.index(200));
      const auto v = static_cast<VertexId>(churn_rng.index(200));
      if (u == v) continue;
      engine.apply(churn_rng.bernoulli(0.5) ? Event::edge_insert(u, v)
                                            : Event::edge_delete(u, v));
    }
  };
  StreamEngine serial{DynamicGraph(g)};
  CoreObserver cores_serial;
  MisObserver mis_serial(7);
  serial.attach(&cores_serial);
  serial.attach(&mis_serial);
  churn(serial);
  EXPECT_EQ(serial.recompute_all(1), 2u);

  StreamEngine parallel{DynamicGraph(g)};
  CoreObserver cores_parallel;
  MisObserver mis_parallel(7);
  parallel.attach(&cores_parallel);
  parallel.attach(&mis_parallel);
  churn(parallel);
  EXPECT_EQ(parallel.recompute_all(8), 2u);

  EXPECT_EQ(cores_serial.cores(), cores_parallel.cores());
  EXPECT_EQ(cores_serial.cores(),
            core_numbers(serial.graph().materialize()));
  for (VertexId v = 0; v < 200; ++v) {
    EXPECT_EQ(mis_serial.in_mis(v), mis_parallel.in_mis(v));
  }
}

}  // namespace
}  // namespace structnet
