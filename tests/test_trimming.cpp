// Tests for src/trimming: the paper's EG trimming rules on the Fig. 2
// example, property tests on random traces, and UDG topology control.
#include <gtest/gtest.h>

#include <algorithm>

#include "algo/components.hpp"
#include "algo/mst.hpp"
#include "core/generators.hpp"
#include "mobility/contact_trace.hpp"
#include "mobility/mobility_models.hpp"
#include "temporal/fig2_example.hpp"
#include "temporal/journeys.hpp"
#include "trimming/eg_trimming.hpp"
#include "trimming/topology_control.hpp"

namespace structnet {
namespace {

std::vector<double> fig2_priorities() {
  // p(A) > p(B) > p(C) > p(D) (> E > F), per the paper.
  return {6.0, 5.0, 4.0, 3.0, 2.0, 1.0};
}

TEST(EgTrimming, Fig2ACanIgnoreNeighborD) {
  // The paper: "any path A -> D -> C can be replaced by a path
  // A -> B -> C ... Therefore, A can ignore neighbor D."
  const auto eg = fig2::build();
  const auto prio = fig2_priorities();
  EXPECT_TRUE(can_ignore_neighbor(eg, fig2::A, fig2::D, prio));
}

TEST(EgTrimming, Fig2StatedReplacementHolds) {
  // A -3-> D -6-> C is replaced by A -4-> B -5-> C: i'=4 >= 3, j'=5 <= 6.
  const auto eg = fig2::build();
  const auto prio = fig2_priorities();
  EXPECT_TRUE(replacement_exists(eg, fig2::A, fig2::D, fig2::C, 3, 6, prio,
                                 TrimVariant::kCompletionTimePreserving));
  // And even under the minimum-hop variant (one intermediate).
  EXPECT_TRUE(replacement_exists(eg, fig2::A, fig2::D, fig2::C, 3, 6, prio,
                                 TrimVariant::kMinimumHopPreserving));
}

TEST(EgTrimming, Fig2DCannotIgnoreA) {
  // The paper: "path D -> A -> B cannot be replaced by D -> B".
  const auto eg = fig2::build();
  const auto prio = fig2_priorities();
  EXPECT_FALSE(can_ignore_neighbor(eg, fig2::D, fig2::A, prio));
}

TEST(EgTrimming, Fig2NodeDNotTrimmableButLinkIs) {
  // Node trimming must also protect B -> D -> C at time 0, which has no
  // replacement; so the node rule rejects D while the link rule lets A
  // drop its D link. This is exactly the node-vs-link distinction the
  // paper draws.
  const auto eg = fig2::build();
  const auto prio = fig2_priorities();
  EXPECT_FALSE(can_trim_node(eg, fig2::D, prio));
}

TEST(EgTrimming, ReplacementNeedsPriorityOrdering) {
  // The replacement A -> B -> C requires p(B) > p(D); with the priority
  // of B pushed below D the rule must refuse (circular replacement
  // protection).
  const auto eg = fig2::build();
  std::vector<double> prio{6.0, 2.5, 4.0, 3.0, 2.0, 1.0};  // p(B) < p(D)
  EXPECT_FALSE(can_ignore_neighbor(eg, fig2::A, fig2::D, prio));
}

TEST(EgTrimming, ReplacementLabelWindowEnforced) {
  // For the pair (i=3, j=4) no replacement exists: A -4-> B -5-> C
  // arrives at 5 > 4.
  const auto eg = fig2::build();
  const auto prio = fig2_priorities();
  EXPECT_FALSE(replacement_exists(eg, fig2::A, fig2::D, fig2::C, 3, 4, prio,
                                  TrimVariant::kCompletionTimePreserving));
}

TEST(EgTrimming, TrimNodesOnTriangleWithShadowNode) {
  // Node 3 (priority lowest) duplicates a connection the path through
  // node 1 already provides with a wider label window: it must be
  // trimmed, while the load-bearing nodes 0 and 2 must not be
  // (pre-trim, against the original graph).
  TemporalGraph eg(4, 6);
  eg.add_contact(0, 1, 1);
  eg.add_contact(1, 2, 2);
  eg.add_contact(0, 2, 0);
  eg.add_contact(0, 3, 0);
  eg.add_contact(3, 2, 4);
  std::vector<double> prio{4.0, 3.0, 2.0, 1.0};
  // 0 -0-> 3 -4-> 2: replacement 0 -1-> 1 -2-> 2 has i'=1 >= 0, j'=2 <= 4.
  EXPECT_TRUE(can_trim_node(eg, 3, prio));
  EXPECT_FALSE(can_trim_node(eg, 0, prio));
  EXPECT_FALSE(can_trim_node(eg, 2, prio));
  const auto result = trim_nodes(eg, prio);
  EXPECT_NE(std::find(result.removed_nodes.begin(), result.removed_nodes.end(),
                      VertexId{3}),
            result.removed_nodes.end());
  EXPECT_EQ(result.trimmed.find_edge(0, 3), kInvalidEdge);
  EXPECT_EQ(result.trimmed.find_edge(2, 3), kInvalidEdge);
}

TEST(EgTrimming, TrimNodesPreservesReachabilityOnRandomTraces) {
  // Property: after node trimming, every surviving pair keeps its
  // earliest completion time at every start time.
  Rng rng(11);
  for (int trial = 0; trial < 8; ++trial) {
    RandomWaypointParams p;
    p.nodes = 10;
    p.steps = 12;
    const auto traj = random_waypoint(p, rng);
    const auto eg = contacts_from_trajectory(traj, 0.4);
    std::vector<double> prio(p.nodes);
    for (std::size_t v = 0; v < p.nodes; ++v) {
      prio[v] = static_cast<double>(p.nodes - v);
    }
    const auto result = trim_nodes(eg, prio);
    std::vector<bool> alive(p.nodes, true);
    for (VertexId v : result.removed_nodes) alive[v] = false;
    EXPECT_TRUE(preserves_reachability(eg, result.trimmed, alive,
                                       /*check_completion=*/true))
        << "trial " << trial;
  }
}

TEST(EgTrimming, TrimLinksPreservesReachability) {
  Rng rng(13);
  for (int trial = 0; trial < 8; ++trial) {
    RandomWaypointParams p;
    p.nodes = 9;
    p.steps = 10;
    const auto traj = random_waypoint(p, rng);
    const auto eg = contacts_from_trajectory(traj, 0.45);
    std::vector<double> prio(p.nodes);
    for (std::size_t v = 0; v < p.nodes; ++v) {
      prio[v] = static_cast<double>(p.nodes - v);
    }
    const auto result = trim_links(eg, prio);
    const std::vector<bool> alive(p.nodes, true);
    EXPECT_TRUE(preserves_reachability(eg, result.trimmed, alive,
                                       /*check_completion=*/false))
        << "trial " << trial << " removed " << result.removed_links.size();
  }
}

TEST(EgTrimming, LinkTrimMayDelayEndpointArrival) {
  // Canonical example: (w,u)={1}, (w,v)={2}, (u,v)={2}. Both directions
  // of the link rule hold (through traffic is windowed), so (w, u) is
  // trimmable — but afterwards w reaches u at time 2 instead of 1. Link
  // trimming trades endpoint completion time for sparsity; it must never
  // trade away reachability.
  TemporalGraph eg(3, 4);
  const VertexId w = 0, u = 1, v = 2;
  eg.add_contact(w, u, 1);
  eg.add_contact(w, v, 2);
  eg.add_contact(u, v, 2);
  const std::vector<double> prio{3, 2, 1};
  EXPECT_TRUE(can_ignore_neighbor(eg, w, u, prio));
  EXPECT_TRUE(can_ignore_neighbor(eg, u, w, prio));
  const auto result = trim_links(eg, prio);
  ASSERT_EQ(result.removed_links.size(), 1u);
  // Reachability preserved at every start time...
  const std::vector<bool> alive(3, true);
  EXPECT_TRUE(preserves_reachability(eg, result.trimmed, alive, false));
  // ...but the w -> u completion at start 0 degraded from 1 to 2.
  EXPECT_EQ(earliest_arrival(eg, w, 0).completion[u], 1u);
  EXPECT_EQ(earliest_arrival(result.trimmed, w, 0).completion[u], 2u);
}

TEST(EgTrimming, PendantLinkNeverTrimmed) {
  // A pendant vertex satisfies the link rule vacuously (no through
  // paths); the endpoint guard must keep its only link.
  TemporalGraph eg(3, 4);
  eg.add_contact(0, 1, 1);
  eg.add_contact(1, 2, 2);  // 2 is pendant via (1, 2)
  const std::vector<double> prio{3, 2, 1};
  const auto result = trim_links(eg, prio);
  EXPECT_NE(result.trimmed.find_edge(1, 2), kInvalidEdge);
  const std::vector<bool> alive(3, true);
  EXPECT_TRUE(preserves_reachability(eg, result.trimmed, alive, false));
}

TEST(EgTrimming, LabelTrimmingPreservesCompletionTimes) {
  Rng rng(17);
  for (int trial = 0; trial < 6; ++trial) {
    RandomWaypointParams p;
    p.nodes = 8;
    p.steps = 10;
    const auto traj = random_waypoint(p, rng);
    const auto eg = contacts_from_trajectory(traj, 0.5);
    const auto result = trim_labels(eg);
    const std::vector<bool> alive(p.nodes, true);
    EXPECT_TRUE(preserves_reachability(eg, result.trimmed, alive, true))
        << "trial " << trial << " removed " << result.removed_labels;
  }
}

TEST(EgTrimming, LabelIsRedundantExactCheck) {
  // Triangle active entirely at time 2: each single label is redundant.
  TemporalGraph eg(3, 4);
  eg.add_contact(0, 1, 2);
  eg.add_contact(1, 2, 2);
  eg.add_contact(0, 2, 2);
  EXPECT_TRUE(label_is_redundant(eg, 0, 1, 2));
  // A lone bridge label is not.
  TemporalGraph bridge(3, 4);
  bridge.add_contact(0, 1, 1);
  bridge.add_contact(1, 2, 2);
  EXPECT_FALSE(label_is_redundant(bridge, 0, 1, 1));
}

TEST(EgTrimming, MinimumHopVariantIsStricter) {
  // A replacement path with two intermediates satisfies the base rule
  // but not the minimum-hop-preserving variant.
  TemporalGraph eg(5, 8);
  eg.add_contact(0, 4, 1);  // through candidate node 4
  eg.add_contact(4, 3, 5);
  eg.add_contact(0, 1, 2);  // replacement chain 0-1-2-3
  eg.add_contact(1, 2, 3);
  eg.add_contact(2, 3, 4);
  std::vector<double> prio{5.0, 4.0, 3.0, 2.0, 1.0};
  EXPECT_TRUE(replacement_exists(eg, 0, 4, 3, 1, 5, prio,
                                 TrimVariant::kCompletionTimePreserving));
  EXPECT_FALSE(replacement_exists(eg, 0, 4, 3, 1, 5, prio,
                                  TrimVariant::kMinimumHopPreserving));
}

// ------------------------------------------------- topology control

TEST(TopologyControl, GabrielAndRngAreSubgraphs) {
  Rng rng(19);
  std::vector<Point2D> pts;
  const Graph g = random_geometric(120, 0.18, rng, &pts);
  const Graph gg = gabriel_graph(g, pts);
  const Graph rng_graph = relative_neighborhood_graph(g, pts);
  EXPECT_LE(gg.edge_count(), g.edge_count());
  EXPECT_LE(rng_graph.edge_count(), gg.edge_count());  // RNG subset of GG
  for (const auto& e : rng_graph.edges()) {
    EXPECT_TRUE(gg.has_edge(e.u, e.v));
  }
  for (const auto& e : gg.edges()) {
    EXPECT_TRUE(g.has_edge(e.u, e.v));
  }
}

TEST(TopologyControl, TrimmingPreservesConnectivity) {
  Rng rng(23);
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<Point2D> pts;
    Graph g = random_geometric(100, 0.25, rng, &pts);
    const auto mask = largest_component_mask(g);
    std::vector<VertexId> map;
    const Graph comp = g.induced_subgraph(mask, &map);
    std::vector<Point2D> comp_pts;
    for (std::size_t v = 0; v < pts.size(); ++v) {
      if (mask[v]) comp_pts.push_back(pts[v]);
    }
    ASSERT_TRUE(is_connected(comp));
    EXPECT_TRUE(is_connected(gabriel_graph(comp, comp_pts))) << trial;
    EXPECT_TRUE(is_connected(relative_neighborhood_graph(comp, comp_pts)))
        << trial;
  }
}

TEST(TopologyControl, BothContainEveryMst) {
  Rng rng(29);
  std::vector<Point2D> pts;
  Graph g = random_geometric(80, 0.3, rng, &pts);
  // Euclidean edge weights; MST edges must survive in GG and RNG.
  std::vector<double> w;
  for (const auto& e : g.edges()) w.push_back(distance(pts[e.u], pts[e.v]));
  const auto mst = kruskal_mst(g, w);
  const Graph gg = gabriel_graph(g, pts);
  const Graph rg = relative_neighborhood_graph(g, pts);
  for (EdgeId e : mst) {
    EXPECT_TRUE(gg.has_edge(g.edge(e).u, g.edge(e).v));
    EXPECT_TRUE(rg.has_edge(g.edge(e).u, g.edge(e).v));
  }
}

TEST(TopologyControl, StretchReportSane) {
  Rng rng(31);
  std::vector<Point2D> pts;
  Graph g = random_geometric(90, 0.25, rng, &pts);
  const Graph rg = relative_neighborhood_graph(g, pts);
  const auto report = hop_stretch(g, rg);
  EXPECT_GE(report.average, 1.0);
  EXPECT_GE(report.maximum, report.average);
  EXPECT_GT(report.pairs, 0u);
}

}  // namespace
}  // namespace structnet
