// Tests for src/temporal: the EG container, journey algorithms, and the
// reconstructed Fig. 2 example with every claim the paper's text makes.
#include <gtest/gtest.h>

#include <algorithm>

#include "temporal/fig2_example.hpp"
#include "temporal/journeys.hpp"
#include "temporal/temporal_graph.hpp"

namespace structnet {
namespace {

TEST(TemporalGraph, AddContactIdempotent) {
  TemporalGraph eg(3, 10);
  eg.add_contact(0, 1, 4);
  eg.add_contact(1, 0, 4);
  eg.add_contact(0, 1, 2);
  ASSERT_EQ(eg.edge_count(), 1u);
  EXPECT_EQ(eg.edge(0).labels, (std::vector<TimeUnit>{2, 4}));
  EXPECT_TRUE(eg.has_contact(0, 1, 4));
  EXPECT_FALSE(eg.has_contact(0, 1, 3));
}

TEST(TemporalGraph, SnapshotAndFootprint) {
  TemporalGraph eg(4, 5);
  eg.add_contact(0, 1, 0);
  eg.add_contact(1, 2, 0);
  eg.add_contact(2, 3, 3);
  const Graph s0 = eg.snapshot(0);
  EXPECT_EQ(s0.edge_count(), 2u);
  EXPECT_TRUE(s0.has_edge(0, 1));
  EXPECT_FALSE(s0.has_edge(2, 3));
  EXPECT_EQ(eg.snapshot(3).edge_count(), 1u);
  EXPECT_EQ(eg.footprint().edge_count(), 3u);
}

TEST(TemporalGraph, SnapshotRoundTrip) {
  TemporalGraph eg(4, 4);
  eg.add_contact(0, 1, 0);
  eg.add_contact(1, 2, 1);
  eg.add_contact(2, 3, 2);
  eg.add_contact(0, 3, 3);
  std::vector<Graph> snaps;
  for (TimeUnit t = 0; t < 4; ++t) snaps.push_back(eg.snapshot(t));
  const TemporalGraph back = TemporalGraph::from_snapshots(snaps);
  EXPECT_EQ(back.edge_count(), eg.edge_count());
  for (TimeUnit t = 0; t < 4; ++t) {
    EXPECT_EQ(back.snapshot(t).edge_count(), eg.snapshot(t).edge_count());
  }
}

TEST(TemporalGraph, ContactsSortedByTime) {
  TemporalGraph eg(3, 6);
  eg.add_contact(0, 1, 5);
  eg.add_contact(1, 2, 1);
  eg.add_contact(0, 2, 3);
  const auto cs = eg.contacts();
  ASSERT_EQ(cs.size(), 3u);
  EXPECT_TRUE(std::is_sorted(cs.begin(), cs.end(),
                             [](const Contact& a, const Contact& b) {
                               return a.t < b.t;
                             }));
}

TEST(TemporalGraph, WithoutVertexEdgeLabel) {
  TemporalGraph eg(3, 6);
  eg.add_contact(0, 1, 1);
  eg.add_contact(0, 1, 3);
  eg.add_contact(1, 2, 2);
  EXPECT_EQ(eg.without_vertex(1).edge_count(), 0u);
  EXPECT_EQ(eg.without_edge(0, 1).edge_count(), 1u);
  const auto fewer = eg.without_label(0, 1, 3);
  EXPECT_TRUE(fewer.has_contact(0, 1, 1));
  EXPECT_FALSE(fewer.has_contact(0, 1, 3));
}

TEST(Journeys, EarliestArrivalChainsWithinUnit) {
  // Instantaneous transmission: 0-1 and 1-2 both at time 2 chain.
  TemporalGraph eg(3, 5);
  eg.add_contact(0, 1, 2);
  eg.add_contact(1, 2, 2);
  const auto ea = earliest_arrival(eg, 0, 0);
  EXPECT_EQ(ea.completion[2], 2u);
}

TEST(Journeys, EarliestArrivalRespectsLabelOrder) {
  // 1-2 happens BEFORE 0-1: no journey 0 -> 2.
  TemporalGraph eg(3, 5);
  eg.add_contact(0, 1, 3);
  eg.add_contact(1, 2, 1);
  const auto ea = earliest_arrival(eg, 0, 0);
  EXPECT_EQ(ea.completion[2], kNeverTime);
  EXPECT_EQ(ea.completion[1], 3u);
}

TEST(Journeys, EarliestCompletionJourneyIsValid) {
  TemporalGraph eg(4, 10);
  eg.add_contact(0, 1, 1);
  eg.add_contact(1, 2, 4);
  eg.add_contact(2, 3, 7);
  eg.add_contact(0, 3, 9);
  const auto j = earliest_completion_journey(eg, 0, 3, 0);
  ASSERT_TRUE(j.has_value());
  EXPECT_TRUE(j->valid_for(eg));
  EXPECT_EQ(j->completion(), 7u);
  EXPECT_EQ(j->hop_count(), 3u);
}

TEST(Journeys, MinimumHopTradesTimeForHops) {
  // Direct contact at 9 vs 3-hop chain completing at 7.
  TemporalGraph eg(4, 10);
  eg.add_contact(0, 1, 1);
  eg.add_contact(1, 2, 4);
  eg.add_contact(2, 3, 7);
  eg.add_contact(0, 3, 9);
  const auto j = minimum_hop_journey(eg, 0, 3, 0);
  ASSERT_TRUE(j.has_value());
  EXPECT_EQ(j->hop_count(), 1u);
  EXPECT_EQ(j->completion(), 9u);
  EXPECT_TRUE(j->valid_for(eg));
}

TEST(Journeys, FastestMinimizesSpan) {
  // Starting immediately yields span 6 (labels 1..7); waiting for the
  // late chain 5,6 yields span 1.
  TemporalGraph eg(4, 10);
  eg.add_contact(0, 1, 1);
  eg.add_contact(1, 3, 7);
  eg.add_contact(0, 2, 5);
  eg.add_contact(2, 3, 6);
  const auto j = fastest_journey(eg, 0, 3, 0);
  ASSERT_TRUE(j.has_value());
  EXPECT_EQ(j->span(), 1u);
  EXPECT_EQ(j->departure(), 5u);
  EXPECT_TRUE(j->valid_for(eg));
}

TEST(Journeys, MinimumHopRespectsStartTime) {
  TemporalGraph eg(3, 10);
  eg.add_contact(0, 2, 1);  // direct but too early
  eg.add_contact(0, 1, 5);
  eg.add_contact(1, 2, 6);
  const auto j = minimum_hop_journey(eg, 0, 2, 3);
  ASSERT_TRUE(j.has_value());
  EXPECT_EQ(j->hop_count(), 2u);
  EXPECT_GE(j->departure(), 3u);
}

TEST(Journeys, SelfJourneyIsEmpty) {
  TemporalGraph eg(2, 3);
  eg.add_contact(0, 1, 0);
  EXPECT_TRUE(minimum_hop_journey(eg, 1, 1, 0)->empty());
  EXPECT_TRUE(fastest_journey(eg, 1, 1, 0)->empty());
}

TEST(Journeys, FloodingTimeAndDynamicDiameter) {
  // 0-1 at 0, 1-2 at 1, 2-3 at 2: flooding from 0 completes at 2;
  // flooding from 3 can never reach 0 (labels decrease), so the dynamic
  // diameter is infinite.
  TemporalGraph eg(4, 4);
  eg.add_contact(0, 1, 0);
  eg.add_contact(1, 2, 1);
  eg.add_contact(2, 3, 2);
  EXPECT_EQ(flooding_time(eg, 0), 2u);
  EXPECT_EQ(flooding_time(eg, 3), kNeverTime);
  EXPECT_EQ(dynamic_diameter(eg), kNeverTime);
}

TEST(Journeys, DynamicDiameterOnPeriodicGraph) {
  // Periodic ring: every node floods everywhere eventually.
  TemporalGraph eg(4, 12);
  for (TimeUnit t = 0; t < 12; ++t) {
    eg.add_contact(t % 4, (t + 1) % 4, t);
  }
  EXPECT_NE(dynamic_diameter(eg), kNeverTime);
}

// ------------------------------------------------------ Fig. 2 claims

TEST(Fig2, StatedContactsExist) {
  const auto eg = fig2::build();
  // Claim 1: path A -4-> B -5-> C.
  EXPECT_TRUE(eg.has_contact(fig2::A, fig2::B, 4));
  EXPECT_TRUE(eg.has_contact(fig2::B, fig2::C, 5));
  // Claim 2: path A -3-> D -6-> C.
  EXPECT_TRUE(eg.has_contact(fig2::A, fig2::D, 3));
  EXPECT_TRUE(eg.has_contact(fig2::C, fig2::D, 6));
}

TEST(Fig2, SixNodesThreeMobileThreeStatic) {
  const auto eg = fig2::build();
  EXPECT_EQ(eg.vertex_count(), 6u);
  EXPECT_EQ(eg.horizon(), 7u);
}

TEST(Fig2, AConnectedToCAtStartingUnits0Through4Only) {
  // The paper: "A is connected to C at starting time units 0, 1, 2, 3,
  // and 4" — and, with our reconstruction, at no later start.
  const auto eg = fig2::build();
  for (TimeUnit t = 0; t <= 4; ++t) {
    EXPECT_TRUE(is_connected_at(eg, fig2::A, fig2::C, t)) << "t=" << t;
  }
  for (TimeUnit t = 5; t < eg.horizon(); ++t) {
    EXPECT_FALSE(is_connected_at(eg, fig2::A, fig2::C, t)) << "t=" << t;
  }
}

TEST(Fig2, StatedJourneysAreValid) {
  const auto eg = fig2::build();
  Journey ab_bc{{{fig2::A, fig2::B, 4}, {fig2::B, fig2::C, 5}}};
  EXPECT_TRUE(ab_bc.valid_for(eg));
  Journey ad_dc{{{fig2::A, fig2::D, 3}, {fig2::D, fig2::C, 6}}};
  EXPECT_TRUE(ad_dc.valid_for(eg));
}

TEST(Fig2, AAndCDisconnectedInEverySnapshot) {
  // "the network is not connected at any given time" — specifically A
  // and C never share a snapshot component.
  const auto eg = fig2::build();
  for (TimeUnit t = 0; t < eg.horizon(); ++t) {
    const Graph snap = eg.snapshot(t);
    // BFS from A in the snapshot.
    std::vector<bool> seen(snap.vertex_count(), false);
    std::vector<VertexId> stack{fig2::A};
    seen[fig2::A] = true;
    while (!stack.empty()) {
      const VertexId v = stack.back();
      stack.pop_back();
      for (VertexId w : snap.neighbors(v)) {
        if (!seen[w]) {
          seen[w] = true;
          stack.push_back(w);
        }
      }
    }
    EXPECT_FALSE(seen[fig2::C]) << "snapshot " << t;
  }
}

TEST(Fig2, EdgeCyclesMatchText) {
  // (B,D), (C,D) cycle 6; (A,B), (B,C) cycle 3; (A,D) cycle 2.
  const auto eg = fig2::build();
  auto labels = [&](VertexId u, VertexId v) {
    return eg.edge(eg.find_edge(u, v)).labels;
  };
  auto gaps_are = [&](VertexId u, VertexId v, TimeUnit gap) {
    const auto l = labels(u, v);
    for (std::size_t i = 1; i < l.size(); ++i) {
      if (l[i] - l[i - 1] != gap) return false;
    }
    return l.size() >= 2;
  };
  EXPECT_TRUE(gaps_are(fig2::B, fig2::D, 6));
  EXPECT_TRUE(gaps_are(fig2::C, fig2::D, 6));
  EXPECT_TRUE(gaps_are(fig2::A, fig2::B, 3));
  EXPECT_TRUE(gaps_are(fig2::B, fig2::C, 3));
  EXPECT_TRUE(gaps_are(fig2::A, fig2::D, 2));
}

TEST(Fig2, EarliestCompletionFromAAtZero) {
  const auto eg = fig2::build_core();
  const auto ea = earliest_arrival(eg, fig2::A, 0);
  EXPECT_EQ(ea.completion[fig2::B], 1u);  // A -1-> B
  EXPECT_EQ(ea.completion[fig2::D], 1u);  // A -1-> D
  EXPECT_EQ(ea.completion[fig2::C], 2u);  // A -1-> B -2-> C
}

}  // namespace
}  // namespace structnet
