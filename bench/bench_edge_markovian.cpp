// Experiment E2b (Sec. II-B): the two-state edge-Markovian process and
// its dynamic diameter (flooding time), reproducing the qualitative
// result of Clementi et al. [6]: denser stationary regimes flood faster;
// flooding time grows slowly (logarithmically) with n at fixed density.
#include <benchmark/benchmark.h>

#include <iostream>

#include "mobility/edge_markovian.hpp"
#include "temporal/journeys.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace structnet {
namespace {

double average_flooding_time(std::size_t n, double p, double q,
                             std::size_t trials, Rng& rng) {
  RunningStats stats;
  for (std::size_t i = 0; i < trials; ++i) {
    EdgeMarkovianParams params;
    params.nodes = n;
    params.horizon = 256;
    params.death_probability = p;
    params.birth_probability = q;
    const auto eg = edge_markovian_graph(params, rng);
    const TimeUnit f = flooding_time(eg, 0);
    if (f != kNeverTime) stats.add(static_cast<double>(f));
  }
  return stats.count() ? stats.mean() : -1.0;
}

void density_sweep() {
  Table t({"p(death)", "q(birth)", "stationary_density", "avg_flooding_time"});
  Rng rng(1);
  const std::size_t n = 64;
  for (const auto& [p, q] : std::vector<std::pair<double, double>>{
           {0.9, 0.001}, {0.9, 0.005}, {0.9, 0.02}, {0.5, 0.02}, {0.2, 0.02}}) {
    t.add_row({Table::num(p, 3), Table::num(q, 3),
               Table::num(edge_markovian_stationary_density(p, q), 4),
               Table::num(average_flooding_time(n, p, q, 10, rng), 2)});
  }
  t.print(std::cout,
          "E2b: flooding time vs stationary density (n = 64; denser -> "
          "faster flooding)");
}

void size_sweep() {
  Table t({"n", "avg_flooding_time", "per_log2(n)"});
  Rng rng(2);
  const double p = 0.9, q = 0.002;
  for (std::size_t n : {32, 64, 128, 256, 512}) {
    const double f = average_flooding_time(n, p, q, 6, rng);
    t.add_row({Table::num(std::uint64_t(n)), Table::num(f, 2),
               Table::num(f / std::log2(double(n)), 2)});
  }
  t.print(std::cout,
          "E2b: flooding time vs n at fixed (p, q) — near-logarithmic "
          "growth (flat right column = log shape, the [6] result)");
}

void BM_EdgeMarkovianGenerate(benchmark::State& state) {
  Rng rng(3);
  EdgeMarkovianParams params;
  params.nodes = static_cast<std::size_t>(state.range(0));
  params.horizon = 128;
  params.death_probability = 0.7;
  params.birth_probability = 0.01;
  for (auto _ : state) {
    benchmark::DoNotOptimize(edge_markovian_graph(params, rng));
  }
}
BENCHMARK(BM_EdgeMarkovianGenerate)->Arg(32)->Arg(64)->Arg(128);

void BM_FloodingTime(benchmark::State& state) {
  Rng rng(4);
  EdgeMarkovianParams params;
  params.nodes = static_cast<std::size_t>(state.range(0));
  params.horizon = 128;
  params.death_probability = 0.7;
  params.birth_probability = 0.01;
  const auto eg = edge_markovian_graph(params, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(flooding_time(eg, 0));
  }
}
BENCHMARK(BM_FloodingTime)->Arg(32)->Arg(64)->Arg(128);

}  // namespace
}  // namespace structnet

int main(int argc, char** argv) {
  structnet::density_sweep();
  structnet::size_sweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
