// Experiments E12-E15 (the Sec. III/IV "challenge" extensions):
//   E12 hybrid central guidance — fake links vs convergence rounds [31];
//   E13 view inconsistency — structure quality vs staleness;
//   E14 multi-destination DAG maintenance cost;
//   E15 probabilistic trimming — confidence vs realized degradation;
//   plus distributed Dijkstra vs Bellman-Ford round accounting, and
//   temporal small-world metrics across mobility models [15].
#include <benchmark/benchmark.h>

#include <iostream>

#include "algo/shortest_paths.hpp"
#include "core/generators.hpp"
#include "layering/multi_dag.hpp"
#include "mobility/contact_trace.hpp"
#include "mobility/edge_markovian.hpp"
#include "mobility/mobility_models.hpp"
#include "mobility/social_contacts.hpp"
#include "sim/distributed_dijkstra.hpp"
#include "sim/hybrid_control.hpp"
#include "sim/stale_views.hpp"
#include "temporal/smallworld_metrics.hpp"
#include "trimming/probabilistic.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace structnet {
namespace {

void hybrid_table() {
  Table t({"fake_links", "bf_rounds", "avg_stretch", "max_stretch"});
  const Graph g = grid_graph(16, 16);
  for (std::size_t k : {0, 1, 2, 4, 8}) {
    const auto shortcuts = select_shortcuts(g, k);
    const auto r = hybrid_route_to(g, shortcuts, 0);
    t.add_row({Table::num(std::uint64_t(shortcuts.size())),
               Table::num(std::uint64_t(r.rounds)),
               Table::num(r.average_stretch, 3),
               Table::num(r.max_stretch, 3)});
  }
  t.print(std::cout,
          "E12: central guidance over distributed routing (16x16 grid) — "
          "a few fake links slash Bellman-Ford convergence at bounded "
          "data-plane stretch");
}

void dijkstra_vs_bf_table() {
  Table t({"topology", "n", "dd_rounds", "dd_messages", "bf_rounds"});
  Rng rng(1);
  auto row = [&](const std::string& name, const Graph& g) {
    std::vector<double> w(g.edge_count(), 1.0);
    const auto dd = distributed_dijkstra(g, w, 0);
    const auto bf = bellman_ford(g, w, 0);
    t.add_row({name, Table::num(std::uint64_t(g.vertex_count())),
               Table::num(std::uint64_t(dd.rounds)),
               Table::num(std::uint64_t(dd.messages)),
               Table::num(std::uint64_t(bf.rounds))});
  };
  row("path(64)", path_graph(64));
  row("grid(8x8)", grid_graph(8, 8));
  row("barabasi-albert(64,2)", barabasi_albert(64, 2, rng));
  t.print(std::cout,
          "E12: the paper's 'back-and-forth propagation is not "
          "efficient' — root-coordinated Dijkstra vs Bellman-Ford");
}

void stale_view_table() {
  Table t({"staleness", "domination", "cds_connectivity", "mis_independence",
           "mis_maximality"});
  Rng rng(2);
  EdgeMarkovianParams p;
  p.nodes = 28;
  p.horizon = 120;
  p.death_probability = 0.25;
  p.birth_probability = 0.08;
  const auto eg = edge_markovian_graph(p, rng);
  std::vector<double> prio(p.nodes);
  for (auto& x : prio) x = rng.uniform01();
  for (TimeUnit delay : {0, 1, 2, 4, 8, 16, 32}) {
    const auto r = evaluate_stale_structures(eg, delay, prio);
    t.add_row({Table::num(std::uint64_t(delay)),
               Table::num(r.domination_rate, 3),
               Table::num(r.connectivity_rate, 3),
               Table::num(r.independence_rate, 3),
               Table::num(r.maximality_rate, 3)});
  }
  t.print(std::cout,
          "E13: view inconsistency — domination survives stale views; "
          "independence collapses immediately (negative constraints are "
          "fragile under churn)");
}

void multi_dag_table() {
  Table t({"destinations", "avg_node_reversals_per_failure", "avg_dags_touched",
           "still_valid"});
  Rng rng(3);
  for (std::size_t k : {1, 2, 4, 8}) {
    RunningStats work, touched;
    bool valid = true;
    for (int trial = 0; trial < 6; ++trial) {
      Graph g = grid_graph(7, 7);
      std::vector<VertexId> dests;
      for (std::size_t i = 0; i < k; ++i) {
        dests.push_back(static_cast<VertexId>((i * 48) / k));
      }
      MultiDestinationDags dags(g, dests);
      for (int f = 0; f < 4; ++f) {
        // Fail random edges while keeping the grid connected enough.
        const auto& e = dags.graph().edge(
            static_cast<EdgeId>(rng.index(dags.graph().edge_count())));
        const auto stats = dags.fail_link(e.u, e.v);
        if (!stats.converged) break;
        work.add(static_cast<double>(stats.total_node_reversals));
        touched.add(static_cast<double>(stats.dags_touched));
      }
      valid &= dags.all_valid();
    }
    t.add_row({Table::num(std::uint64_t(k)), Table::num(work.mean(), 2),
               Table::num(touched.mean(), 2), valid ? "yes" : "NO"});
  }
  t.print(std::cout,
          "E14: maintaining DAGs for multiple destinations — repair work "
          "grows with the destination count (7x7 grid, random failures)");
}

void probabilistic_trimming_table() {
  // Confidence in the probabilistic link rule vs realized degradation of
  // ignoring the (A, D)-style link when contacts are only probable.
  Table t({"contact_prob", "P(rule holds)", "degradation_rate"});
  Rng rng(4);
  for (double q : {1.0, 0.9, 0.7, 0.5, 0.3}) {
    // The Fig. 2 core with the replacement path's contacts downgraded to
    // probability q.
    ProbabilisticTemporalGraph eg(4, 7);
    eg.add_contact(0, 1, 1, q);   // (A,B)
    eg.add_contact(0, 1, 4, q);
    eg.add_contact(1, 2, 2, q);   // (B,C)
    eg.add_contact(1, 2, 5, q);
    eg.add_contact(0, 3, 1, 1.0);  // (A,D)
    eg.add_contact(0, 3, 3, 1.0);
    eg.add_contact(1, 3, 0, 1.0);  // (B,D)
    eg.add_contact(1, 3, 6, 1.0);
    eg.add_contact(2, 3, 0, 1.0);  // (C,D)
    eg.add_contact(2, 3, 6, 1.0);
    const std::vector<double> prio{4, 3, 2, 1};
    const double rule =
        ignore_neighbor_probability(eg, 0, 3, prio, 400, rng);
    const double degradation = trim_degradation(eg, 0, 3, 60, rng);
    t.add_row({Table::num(q, 2), Table::num(rule, 3),
               Table::num(degradation, 4)});
  }
  t.print(std::cout,
          "E15: probabilistic trimming — rule confidence tracks contact "
          "probability; realized damage of ignoring the link grows as "
          "the replacement path gets flaky");
}

void temporal_smallworld_table() {
  Table t({"trace", "temporal_correlation_C", "char_path_length_L",
           "reachable"});
  Rng rng(5);
  auto row = [&](const std::string& name, const TemporalGraph& eg) {
    const auto l = characteristic_temporal_path_length(eg);
    t.add_row({name, Table::num(temporal_correlation_coefficient(eg), 3),
               Table::num(l.characteristic_length, 2),
               Table::num(l.reachable_fraction, 3)});
  };
  RandomWaypointParams rwp;
  rwp.nodes = 30;
  rwp.steps = 80;
  row("random-waypoint", contacts_from_trajectory(random_waypoint(rwp, rng), 0.2));
  CommunityMobilityParams cm;
  cm.nodes = 30;
  cm.steps = 80;
  cm.communities = 4;
  row("community", contacts_from_trajectory(community_mobility(cm, rng, nullptr), 0.2));
  EdgeMarkovianParams em;
  em.nodes = 30;
  em.horizon = 80;
  em.death_probability = 0.5;
  em.birth_probability = 0.05;
  row("edge-markovian", edge_markovian_graph(em, rng));
  SocialTraceParams st;
  st.people = 30;
  st.horizon = 80;
  row("social-feature",
      social_contact_trace(st, random_profiles(30, st.radices, rng), rng));
  t.print(std::cout,
          "E13b: temporal small-world metrics [15] — physical mobility "
          "carries high temporal correlation; memoryless models do not");
}

void BM_SelectShortcuts(benchmark::State& state) {
  const Graph g = grid_graph(16, 16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(select_shortcuts(g, 4));
  }
}
BENCHMARK(BM_SelectShortcuts);

void BM_StaleEvaluation(benchmark::State& state) {
  Rng rng(6);
  EdgeMarkovianParams p;
  p.nodes = 24;
  p.horizon = 40;
  const auto eg = edge_markovian_graph(p, rng);
  std::vector<double> prio(p.nodes);
  for (auto& x : prio) x = rng.uniform01();
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluate_stale_structures(eg, 4, prio));
  }
}
BENCHMARK(BM_StaleEvaluation);

}  // namespace
}  // namespace structnet

int main(int argc, char** argv) {
  structnet::hybrid_table();
  structnet::dijkstra_vs_bf_table();
  structnet::stale_view_table();
  structnet::multi_dag_table();
  structnet::probabilistic_trimming_table();
  structnet::temporal_smallworld_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
