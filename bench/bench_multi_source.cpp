// Lane-packed multi-source sweep benchmark (the PR-10 acceptance
// experiment): all-pairs-style earliest-arrival work on synthetic
// contact traces, scalar one-sweep-per-source vs. 64 sources sharing
// one contact-stream pass (temporal/multi_source.hpp), single thread.
// Per-lane results are asserted bit-identical (arrivals AND via-from)
// before anything is timed — "results_match" in the JSON is that gate.
//
// Two instances: "smoke" (small, fast enough for check.sh's Release
// bench gate, asserted >= 4x there) and "allpairs20k" (the 20k-vertex
// instance bench_temporal_paths uses, acceptance target >= 8x).
#include <benchmark/benchmark.h>

#include <array>
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "obs/metrics.hpp"
#include "temporal/journeys.hpp"
#include "temporal/multi_source.hpp"
#include "temporal/temporal_csr.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace structnet {
namespace {

constexpr std::size_t kLanes = MultiSourceWorkspace::kMaxLanes;

TemporalGraph make_trace(std::size_t n, TimeUnit horizon, std::size_t edges,
                         std::size_t labels_per_edge, std::uint64_t seed) {
  Rng rng(seed);
  TemporalGraph eg(n, horizon);
  for (std::size_t i = 0; i < edges; ++i) {
    const auto u = static_cast<VertexId>(rng.index(n));
    const auto v = static_cast<VertexId>(rng.index(n));
    if (u == v) continue;
    for (std::size_t k = 0; k < labels_per_edge; ++k) {
      eg.add_contact(u, v, static_cast<TimeUnit>(rng.index(horizon)));
    }
  }
  return eg;
}

void sweep_speedup(Table& t, const char* instance, std::size_t n,
                   TimeUnit horizon, std::size_t edges,
                   std::size_t labels_per_edge, std::size_t sample_blocks) {
  const TemporalGraph eg = make_trace(n, horizon, edges, labels_per_edge, 101);
  const TemporalCsr csr(eg);

  // sample_blocks lane-blocks of 64 evenly spread sources — the same
  // source set both implementations sweep.
  std::vector<VertexId> sources;
  const std::size_t total = sample_blocks * kLanes;
  for (std::size_t i = 0; i < total; ++i) {
    sources.push_back(static_cast<VertexId>((i * n) / total));
  }

  // Equivalence gate before timing: every lane bit-identical to the
  // scalar kernel, arrivals and via-from alike.
  bool match = true;
  TemporalWorkspace scalar_ws;
  MultiSourceWorkspace ws;
  for (std::size_t b = 0; b < sample_blocks && match; ++b) {
    const std::span<const VertexId> block(sources.data() + b * kLanes, kLanes);
    csr_earliest_arrival_batch(csr, block, 0, ws, /*record_via=*/true);
    for (std::size_t l = 0; l < kLanes && match; ++l) {
      csr_earliest_arrival(csr, block[l], 0, scalar_ws);
      for (std::size_t v = 0; v < n && match; ++v) {
        const auto id = static_cast<VertexId>(v);
        match = ws.arrival(l, id) == scalar_ws.arrival(id) &&
                ws.via_from(l, id) == scalar_ws.via(id).from;
      }
    }
  }

  // Best-of-3 repetitions: the timed regions are milliseconds, so one
  // scheduler preemption would otherwise dominate the ratio.
  const auto best_of = [](int reps, auto&& measure) {
    double best = measure();
    for (int r = 1; r < reps; ++r) best = std::min(best, measure());
    return best;
  };
  const double scalar_ns = best_of(3, [&] {
    return time_ns_per_op(sources.size(), [&](std::size_t i) {
      csr_earliest_arrival(csr, sources[i], 0, scalar_ws);
      benchmark::DoNotOptimize(scalar_ws.reached_count());
    });
  });
  const double batch_ns =
      best_of(3, [&] {
        return time_ns_per_op(sample_blocks, [&](std::size_t b) {
          csr_earliest_arrival_batch(
              csr, {sources.data() + b * kLanes, kLanes}, 0, ws);
          benchmark::DoNotOptimize(ws.reached_count(0));
        });
      }) /
      static_cast<double>(kLanes);
  const double speedup = batch_ns > 0.0 ? scalar_ns / batch_ns : 0.0;

  t.add_row({instance, Table::num(std::uint64_t(n)),
             Table::num(std::uint64_t(csr.contact_count())),
             Table::num(scalar_ns / 1e3, 2), Table::num(batch_ns / 1e3, 2),
             Table::num(speedup, 2), match ? "yes" : "NO"});

  BenchJson("multi_source_sweep")
      .field("instance", instance)
      .field("n", std::uint64_t(n))
      .field("contacts", std::uint64_t(csr.contact_count()))
      .field("sources", std::uint64_t(sources.size()))
      .threads(1)
      .field("ns_per_source_scalar", scalar_ns)
      .field("ns_per_source_batch", batch_ns)
      .field("speedup_vs_scalar", speedup)
      .field("results_match", match ? "yes" : "no")
      .emit();
}

void multi_source_tables() {
  Table t({"instance", "n", "contacts", "scalar_us_per_source",
           "batch_us_per_source", "speedup_vs_scalar", "results_match"});
  sweep_speedup(t, "smoke", 2000, 128, 15000, 4, /*sample_blocks=*/2);
  sweep_speedup(t, "allpairs20k", 20000, 512, 150000, 8, /*sample_blocks=*/4);
  t.print(std::cout,
          "E-ms: lane-packed 64-source sweeps vs scalar "
          "earliest-arrival (single thread)");
}

}  // namespace
}  // namespace structnet

int main(int argc, char** argv) {
  structnet::multi_source_tables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  structnet::obs::emit_json(std::cout);
  return 0;
}
