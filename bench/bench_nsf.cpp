// Experiments E3 + E7 (Fig. 3, Fig. 7, Sec. III-B): nested scale-free
// structure. Substitution: the Gnutella snapshot [14] is replaced by
// Barabási–Albert / configuration-model scale-free graphs (see
// DESIGN.md); the NSF signal — stable power-law exponent across
// iterative low-degree peeling — is what Fig. 3 illustrates.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <iostream>

#include "bench_util.hpp"
#include "core/generators.hpp"
#include "layering/nsf.hpp"
#include "layering/pubsub.hpp"
#include "parallel/parallel.hpp"
#include "util/table.hpp"

namespace structnet {
namespace {

void nsf_exponents_table() {
  Rng rng(1);
  const Graph ba = barabasi_albert(1 << 14, 3, rng);
  const auto report = nsf_report(ba, 0.5);
  Table t({"peel_round", "survivors", "alpha", "ks"});
  for (std::size_t r = 0; r < report.fits.size(); ++r) {
    t.add_row({Table::num(std::uint64_t(r)),
               Table::num(std::uint64_t(report.sizes[r])),
               Table::num(report.fits[r].alpha, 3),
               Table::num(report.fits[r].ks, 3)});
  }
  t.print(std::cout,
          "E3: Fig. 3 analogue — BA graph peeled to 50% (Gnutella "
          "substitute); stable alpha across rounds = NSF");
  Table s({"metric", "value"});
  s.add_row({"exponent stddev", Table::num(report.exponent_stddev, 4)});
  s.add_row({"all rounds scale-free", report.all_scale_free ? "yes" : "no"});
  s.print(std::cout, "E3: NSF verdict (condition 2: stddev is o(1))");
}

void nsf_contrast_table() {
  // Scale-free vs non-scale-free substrates: the NSF verdict separates
  // them (who-wins shape).
  Rng rng(2);
  Table t({"graph", "n", "alpha(G)", "exponent_stddev", "scale_free_all"});
  auto row = [&](const std::string& name, const Graph& g) {
    const auto report = nsf_report(g, 0.5);
    t.add_row({name, Table::num(std::uint64_t(g.vertex_count())),
               Table::num(report.fits[0].alpha, 3),
               Table::num(report.exponent_stddev, 4),
               report.all_scale_free ? "yes" : "no"});
  };
  row("barabasi-albert(m=3)", barabasi_albert(8192, 3, rng));
  const auto seq = power_law_degree_sequence(8192, 2.5, 2, 128, rng);
  row("config-model(alpha=2.5)", configuration_model(seq, rng));
  row("erdos-renyi(p=8/n)", erdos_renyi(8192, 8.0 / 8192.0, rng));
  row("grid(90x90)", grid_graph(90, 90));
  t.print(std::cout, "E3: NSF verdict across graph families");
}

void level_table() {
  // E7 / Fig. 7: degree-rank labels vs nested (adjusted-degree) levels.
  Rng rng(3);
  const Graph g = barabasi_albert(4096, 3, rng);
  const auto nested = nsf_level_labels(g);
  const auto rank = degree_rank_labels(g);
  Table t({"labeling", "levels", "top_nodes"});
  const auto rank_max = *std::max_element(rank.begin(), rank.end());
  std::size_t rank_top = 0;
  for (auto l : rank) rank_top += l == rank_max;
  t.add_row({"degree rank (Fig. 7a)", Table::num(std::uint64_t(rank_max)),
             Table::num(std::uint64_t(rank_top))});
  t.add_row({"nested degree (Fig. 7b)", Table::num(std::uint64_t(nested.rounds)),
             Table::num(std::uint64_t(nested.top_nodes().size()))});
  t.print(std::cout,
          "E7: Fig. 7 — nested labeling concentrates the top level "
          "(goal: a single top node)");
}

void pubsub_table() {
  Rng rng(4);
  Table t({"n", "avg_pubsub_hops", "flooding_msgs", "saving_factor"});
  for (std::size_t n : {512, 2048, 8192}) {
    const Graph g = barabasi_albert(n, 3, rng);
    const auto labeling = nsf_level_labels(g);
    const HierarchicalPubSub ps(g, labeling.level);
    double hops = 0.0;
    const int trials = 200;
    for (int i = 0; i < trials; ++i) {
      const auto a = static_cast<VertexId>(rng.index(n));
      const auto b = static_cast<VertexId>(rng.index(n));
      hops += static_cast<double>(ps.deliver(a, b).hops);
    }
    const double avg = hops / trials;
    t.add_row({Table::num(std::uint64_t(n)), Table::num(avg, 2),
               Table::num(std::uint64_t(ps.flooding_cost())),
               Table::num(static_cast<double>(ps.flooding_cost()) / avg, 1)});
  }
  t.print(std::cout,
          "E3: push-pull pub/sub over the NSF hierarchy vs flooding");
}

void BM_NsfLevels(benchmark::State& state) {
  Rng rng(5);
  const Graph g = barabasi_albert(static_cast<std::size_t>(state.range(0)), 3,
                                  rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(nsf_level_labels(g));
  }
}
BENCHMARK(BM_NsfLevels)->Range(1 << 10, 1 << 14);

void BM_PeelSequence(benchmark::State& state) {
  Rng rng(6);
  const Graph g = barabasi_albert(static_cast<std::size_t>(state.range(0)), 3,
                                  rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(peel_sequence(g, 0.5));
  }
}
BENCHMARK(BM_PeelSequence)->Range(1 << 10, 1 << 14);

}  // namespace
}  // namespace structnet

namespace structnet {
namespace {

void json_lines() {
  Rng rng(7);
  for (const std::size_t n : {std::size_t{1} << 12, std::size_t{1} << 14}) {
    const Graph g = barabasi_albert(n, 3, rng);
    bench_json_line("nsf_levels", n, time_ns_per_op(3, [&](std::size_t) {
                      benchmark::DoNotOptimize(nsf_level_labels(g));
                    }));
    bench_json_line("nsf_core_numbers", n, time_ns_per_op(3, [&](std::size_t) {
                      benchmark::DoNotOptimize(core_numbers(g));
                    }));
    // Per-round power-law fits run on the parallel layer; record the
    // thread-count curve so trajectories capture the scaling.
    for (const std::size_t threads : {std::size_t{1}, hardware_threads()}) {
      BenchJson("nsf_report")
          .field("n", std::uint64_t(n))
          .threads(threads)
          .field("ns_per_op", time_ns_per_op(3, [&](std::size_t) {
                   benchmark::DoNotOptimize(nsf_report(g, 0.5, 0.15, threads));
                 }))
          .emit();
    }
  }
}

}  // namespace
}  // namespace structnet

int main(int argc, char** argv) {
  structnet::nsf_exponents_table();
  structnet::nsf_contrast_table();
  structnet::level_table();
  structnet::pubsub_table();
  structnet::json_lines();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
