// Fault subsystem benchmark: delivery-ratio / delay degradation curves
// under seeded contact loss per routing strategy, node-removal
// percolation (random failures vs targeted attacks), and stream
// checkpoint write/restore throughput — plus a crash-recovery smoke
// gate that exits nonzero when a restored engine diverges from the
// uninterrupted run.
//
//   bench_faults           # full experiment tables + registered loops
//   bench_faults --smoke   # reduced sizes; used by scripts/check.sh
#include <benchmark/benchmark.h>
#include <stdlib.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <iostream>
#include <limits>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "bench_util.hpp"
#include "obs/metrics.hpp"
#include "core/generators.hpp"
#include "fault/checkpoint.hpp"
#include "fault/fault_plan.hpp"
#include "fault/recovery.hpp"
#include "fault/robustness.hpp"
#include "fault/wal.hpp"
#include "mobility/edge_markovian.hpp"
#include "sim/dtn_routing.hpp"
#include "stream/engine.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace structnet {
namespace {

/// 50/50 insert/delete churn plus node leave/revive, mirroring the
/// stream bench workload (rejections included by construction).
std::vector<Event> churn_stream(std::size_t n, std::size_t count, Rng& rng) {
  std::vector<Event> events;
  events.reserve(count);
  while (events.size() < count) {
    const auto u = static_cast<VertexId>(rng.index(n));
    const auto v = static_cast<VertexId>(rng.index(n));
    const double dice = rng.uniform01();
    if (dice < 0.40) {
      events.push_back(Event::edge_insert(u, v));
    } else if (dice < 0.70) {
      events.push_back(Event::edge_delete(u, v));
    } else if (dice < 0.85) {
      events.push_back(Event::node_leave(u));
    } else {
      events.push_back(Event::node_join(u));
    }
  }
  return events;
}

/// Crash-recovery gate: randomized churn streams, random kill points;
/// any divergence between the restored engine and the uninterrupted run
/// is a hard failure.
bool crash_recovery_gate(std::size_t runs) {
  const std::size_t n = 24;
  const std::size_t length = 160;
  std::size_t passed = 0;
  for (std::uint64_t run = 0; run < runs; ++run) {
    Rng rng(derive_seed(2024, run));
    const auto events = churn_stream(n, length, rng);
    const std::size_t kill_at = rng.index(length + 1);
    const RecoveryOutcome out =
        run_crash_recovery(n, events, kill_at, derive_seed(5, run));
    if (!out.ok()) {
      std::cerr << "crash-recovery FAILED at run " << run << " kill_at "
                << kill_at << ": graph=" << out.graph_match
                << " counters=" << out.counters_match
                << " cores=" << out.cores_match << " mis=" << out.mis_match
                << '\n';
      return false;
    }
    ++passed;
  }
  BenchJson("fault_crash_recovery")
      .field("runs", std::uint64_t(runs))
      .field("passed", std::uint64_t(passed))
      .threads(1)
      .emit();
  std::cout << "crash-recovery gate: " << passed << "/" << runs
            << " randomized streams recovered exactly\n";
  return true;
}

double median_delay(const RoutingTrialStats& stats) {
  std::vector<double> delays;
  for (const RoutingOutcome& o : stats.outcomes) {
    if (o.delivered) delays.push_back(static_cast<double>(o.delivery_time));
  }
  if (delays.empty()) return -1.0;
  std::sort(delays.begin(), delays.end());
  const std::size_t mid = delays.size() / 2;
  return delays.size() % 2 == 1
             ? delays[mid]
             : 0.5 * (delays[mid - 1] + delays[mid]);
}

/// Delivery ratio and median delay vs contact-loss rate per strategy.
void delivery_vs_loss_table(bool smoke) {
  Rng rng(17);
  EdgeMarkovianParams params;
  params.nodes = smoke ? 48 : 96;
  params.horizon = smoke ? 48 : 96;
  const TemporalGraph trace = edge_markovian_graph(params, rng);
  const auto source = VertexId{0};
  const auto dest = static_cast<VertexId>(params.nodes - 1);
  const std::size_t trials = smoke ? 16 : 64;

  const struct {
    const char* name;
    Strategy strategy;
    std::size_t copies;
  } strategies[] = {
      {"epidemic", epidemic_strategy(), 0},  // budget 0 = unbounded copies
      {"spray4", spray_and_wait_strategy(), 4},
      {"direct", direct_strategy(), 1},
  };

  Table t({"strategy", "loss", "delivery_ratio", "median_delay",
           "mean_transmissions"});
  for (const auto& s : strategies) {
    for (const double loss : {0.0, 0.2, 0.4, 0.6, 0.8}) {
      FaultPlan plan(31);
      plan.set_contact_loss(loss);
      SimulationFaults faults;
      faults.plan = &plan;
      faults.retry.max_attempts = 4;
      const RoutingTrialStats stats =
          simulate_routing_trials(trace, source, dest, 0, s.strategy,
                                  s.copies, faults, trials);
      const double med = median_delay(stats);
      t.add_row({s.name, Table::num(loss, 1),
                 Table::num(stats.delivery_ratio, 3), Table::num(med, 1),
                 Table::num(stats.mean_transmissions, 1)});
      BenchJson("fault_delivery")
          .field("strategy", s.name)
          .field("loss", loss)
          .field("delivery_ratio", stats.delivery_ratio)
          .field("median_delay", med)
          .field("mean_transmissions", stats.mean_transmissions)
          .threads()
          .emit();
    }
  }
  t.print(std::cout,
          "Delivery under seeded contact loss (bounded retransmit, "
          "4 attempts/pair)");
}

/// Random failures vs targeted attacks: largest-component and NSF
/// survival as nodes are removed.
void percolation_table(bool smoke) {
  Rng rng(23);
  const std::size_t n = smoke ? 1'000 : 10'000;
  const auto seq = power_law_degree_sequence(n, 2.5, 2, 64, rng);
  const Graph g = configuration_model(seq, rng);

  Table t({"order", "fraction_removed", "largest_component",
           "nsf_survivors"});
  for (const RemovalOrder order :
       {RemovalOrder::kRandom, RemovalOrder::kDegree, RemovalOrder::kCore}) {
    const double ns = time_ns_per_op(1, [&](std::size_t) {
      const PercolationCurve curve =
          percolation_curve(g, order, /*seed=*/7, /*samples=*/10);
      for (std::size_t i = 0; i < curve.removed.size(); ++i) {
        t.add_row({std::string(to_string(order)),
                   Table::num(curve.fraction_removed[i], 2),
                   Table::num(std::uint64_t(curve.largest_component[i])),
                   Table::num(std::uint64_t(curve.nsf_survivors[i]))});
        BenchJson("fault_percolation")
            .field("order", to_string(order))
            .field("n", std::uint64_t(n))
            .field("fraction_removed", curve.fraction_removed[i])
            .field("largest_component",
                   std::uint64_t(curve.largest_component[i]))
            .field("nsf_survivors", std::uint64_t(curve.nsf_survivors[i]))
            .threads(1)
            .emit();
      }
    });
    BenchJson("fault_percolation_sweep")
        .field("order", to_string(order))
        .field("n", std::uint64_t(n))
        .field("ns_per_op", ns)
        .threads(1)
        .emit();
  }
  t.print(std::cout,
          "Node-removal percolation: random failures vs targeted attacks "
          "(incremental core tracking)");
}

/// Checkpoint write / restore throughput over a churned engine.
void checkpoint_throughput_table(bool smoke) {
  Rng rng(41);
  const std::size_t n = smoke ? 1'000 : 10'000;
  const std::size_t event_count = smoke ? 4'000 : 40'000;
  const Graph seed = erdos_renyi(n, 4.0 / static_cast<double>(n), rng);
  StreamEngine engine{DynamicGraph(seed)};
  for (const Event& e : churn_stream(n, event_count, rng)) engine.apply(e);
  const double logged = static_cast<double>(engine.graph().epoch());

  std::string payload;
  const double write_ns = time_ns_per_op(3, [&](std::size_t) {
    std::ostringstream out;
    write_checkpoint(out, engine);
    payload = out.str();
  });
  double restore_ns = 0.0;
  const double read_ns = time_ns_per_op(3, [&](std::size_t) {
    std::istringstream in(payload);
    const CheckpointResult restored = read_checkpoint(in);
    if (!restored.ok()) {
      std::cerr << "checkpoint restore failed: " << restored.error << '\n';
      std::exit(1);
    }
    benchmark::DoNotOptimize(restored.engine->graph().epoch());
  });
  restore_ns = read_ns;

  Table t({"n", "logged_events", "bytes", "write_events_per_sec",
           "restore_events_per_sec"});
  t.add_row({Table::num(std::uint64_t(n)), Table::num(std::uint64_t(logged)),
             Table::num(std::uint64_t(payload.size())),
             Table::num(logged * 1e9 / write_ns, 0),
             Table::num(logged * 1e9 / restore_ns, 0)});
  t.print(std::cout, "Stream checkpoint serialization throughput");
  BenchJson("fault_checkpoint")
      .field("n", std::uint64_t(n))
      .field("logged_events", std::uint64_t(logged))
      .field("bytes", std::uint64_t(payload.size()))
      .field("write_events_per_sec", logged * 1e9 / write_ns)
      .field("restore_events_per_sec", logged * 1e9 / restore_ns)
      .threads(1)
      .emit();
}

std::string make_temp_dir() {
  char tmpl[] = "/tmp/structnet-bench-wal-XXXXXX";
  if (::mkdtemp(tmpl) == nullptr) {
    std::cerr << "mkdtemp failed for WAL bench\n";
    std::exit(1);
  }
  return std::string(tmpl);
}

/// WAL append throughput across the group-commit x fsync grid. Each
/// cell appends the same pre-built event stream through a WalAppender
/// into a fresh directory and reports sustained events/sec; fsync rows
/// use a smaller stream (each flush pays a disk barrier).
void wal_throughput_table(bool smoke) {
  Rng rng(53);
  const std::size_t n = 256;
  const std::size_t fast_count = smoke ? 4'000 : 100'000;
  const std::size_t fsync_count = smoke ? 400 : 4'000;
  std::vector<Event> events;
  events.reserve(fast_count);
  for (std::size_t i = 0; i < fast_count; ++i) {
    events.push_back(Event::contact_add(
        static_cast<VertexId>(rng.index(n)),
        static_cast<VertexId>(rng.index(n)),
        static_cast<TimeUnit>(rng.index(64))));
  }

  Table t({"group_commit", "fsync", "events", "events_per_sec",
           "mb_per_sec", "segments"});
  for (const std::size_t group : {std::size_t{1}, std::size_t{64},
                                  std::size_t{0}}) {
    for (const bool fsync_on : {true, false}) {
      const std::size_t count = fsync_on ? fsync_count : fast_count;
      const std::string dir = make_temp_dir();
      WalConfig cfg;
      cfg.dir = dir;
      cfg.segment_bytes = std::size_t{1} << 20;
      cfg.group_commit = group;
      cfg.fsync_on_flush = fsync_on;
      std::uint64_t segments = 0;
      const double total_ns = time_ns_per_op(1, [&](std::size_t) {
        WalAppender wal(cfg);
        for (std::size_t i = 0; i < count; ++i) wal.append(events[i]);
        wal.sync();
        segments = wal.segments_opened();
      });
      std::filesystem::remove_all(dir);
      const double per_sec = static_cast<double>(count) * 1e9 / total_ns;
      const double bytes =
          static_cast<double>(count * kWalRecordBytes);
      t.add_row({Table::num(std::uint64_t(group)), fsync_on ? "on" : "off",
                 Table::num(std::uint64_t(count)), Table::num(per_sec, 0),
                 Table::num(bytes * 1e9 / total_ns / 1e6, 1),
                 Table::num(segments)});
      BenchJson("fault_wal")
          .field("group_commit", std::uint64_t(group))
          .field("fsync", fsync_on ? 1.0 : 0.0)
          .field("events", std::uint64_t(count))
          .field("events_per_sec", per_sec)
          .field("segments", segments)
          .threads(1)
          .emit();
    }
  }
  t.print(std::cout,
          "WAL append throughput (group-commit x fsync; 1 MiB segments)");
}

/// Recovery time: replaying the whole history from the WAL alone vs
/// replaying only the suffix past a checkpoint anchor.
void wal_recovery_table(bool smoke) {
  Rng rng(59);
  const std::size_t n = smoke ? 512 : 4'096;
  const std::size_t event_count = smoke ? 4'000 : 40'000;
  const auto events = churn_stream(n, event_count, rng);
  const std::size_t anchor_at = event_count * 9 / 10;

  Table t({"mode", "accepted", "replayed", "recover_ms",
           "replay_events_per_sec"});
  for (const bool checkpointed : {false, true}) {
    const std::string dir = make_temp_dir();
    WalConfig cfg;
    cfg.dir = dir;
    cfg.group_commit = 0;
    cfg.fsync_on_flush = false;
    std::uint64_t accepted = 0;
    {
      StreamEngine engine{DynamicGraph(n)};
      WalAppender wal(cfg);
      engine.attach(&wal);
      engine.apply_batch({events.data(), anchor_at});
      if (checkpointed) {
        wal.sync();
        if (checkpoint_now(dir, engine).empty()) {
          std::cerr << "checkpoint_now failed in WAL recovery bench\n";
          std::exit(1);
        }
      }
      engine.apply_batch(
          {events.data() + anchor_at, event_count - anchor_at});
      wal.sync();
      accepted = engine.graph().epoch();
      engine.detach(&wal);
    }

    std::size_t replayed = 0;
    const double recover_ns = time_ns_per_op(3, [&](std::size_t) {
      RecoverOutcome out = recover(dir, n);
      if (!out.ok() || out.engine->graph().epoch() != accepted) {
        std::cerr << "WAL recovery bench: recover() diverged ("
                  << out.error << ")\n";
        std::exit(1);
      }
      replayed = out.wal_replayed;
      benchmark::DoNotOptimize(out.engine->graph().epoch());
    });
    std::filesystem::remove_all(dir);
    const double replay_rate =
        replayed == 0 ? 0.0
                      : static_cast<double>(replayed) * 1e9 / recover_ns;
    const char* mode = checkpointed ? "checkpointed" : "wal_only";
    t.add_row({mode, Table::num(accepted), Table::num(std::uint64_t(replayed)),
               Table::num(recover_ns / 1e6, 2), Table::num(replay_rate, 0)});
    BenchJson("fault_wal_recovery")
        .field("mode", mode)
        .field("accepted", accepted)
        .field("replayed", std::uint64_t(replayed))
        .field("recover_ms", recover_ns / 1e6)
        .field("replay_events_per_sec", replay_rate)
        .threads(1)
        .emit();
  }
  t.print(std::cout,
          "Recovery time: full WAL replay vs checkpoint + WAL suffix");
}

/// WAL crash matrix: truncate the log at EVERY record boundary plus
/// random byte offsets (and once under a corrupted newest checkpoint);
/// each cut must recover bit-identically to the durable prefix.
bool wal_crash_matrix_gate(bool smoke) {
  const std::size_t n = 24;
  const std::size_t length = smoke ? 120 : 240;
  Rng rng(derive_seed(77, 1));
  const auto events = churn_stream(n, length, rng);

  const WalCrashOutcome probe = run_wal_crash_recovery(
      n, events, std::numeric_limits<std::size_t>::max());
  if (!probe.ok()) {
    std::cerr << "WAL crash matrix: uncut probe run diverged\n";
    return false;
  }
  const std::uint64_t accepted = probe.accepted;
  const std::size_t total_bytes =
      kWalHeaderBytes + static_cast<std::size_t>(accepted) * kWalRecordBytes;

  std::vector<std::size_t> cuts;
  for (std::uint64_t k = 0; k <= accepted; ++k) {
    cuts.push_back(kWalHeaderBytes +
                   static_cast<std::size_t>(k) * kWalRecordBytes);
  }
  for (int i = 0; i < 10; ++i) cuts.push_back(rng.index(total_bytes + 1));

  std::size_t passed = 0;
  for (const std::size_t cut : cuts) {
    const WalCrashOutcome out = run_wal_crash_recovery(n, events, cut);
    if (!out.ok()) {
      std::cerr << "WAL crash matrix FAILED at cut " << cut << ": durable="
                << out.durable << " recovered=" << out.recovered
                << " graph=" << out.graph_match
                << " counters=" << out.counters_match
                << " cores=" << out.cores_match << " mis=" << out.mis_match
                << '\n';
      return false;
    }
    ++passed;
  }

  // Corrupted newest checkpoint: recovery must fall back to an older
  // anchor (or the WAL alone) and still land on the durable prefix.
  WalCrashOptions opt;
  opt.checkpoint_every = 10;
  opt.corrupt_newest_checkpoint = true;
  const WalCrashOutcome fallback = run_wal_crash_recovery(
      n, events, std::numeric_limits<std::size_t>::max(), opt);
  if (!fallback.ok() || fallback.checkpoints_tried < 2) {
    std::cerr << "WAL crash matrix FAILED: corrupted-checkpoint fallback "
                 "(tried=" << fallback.checkpoints_tried << ")\n";
    return false;
  }
  ++passed;

  BenchJson("fault_wal_crash_matrix")
      .field("accepted", accepted)
      .field("cuts", std::uint64_t(cuts.size() + 1))
      .field("passed", std::uint64_t(passed))
      .threads(1)
      .emit();
  std::cout << "WAL crash matrix: " << passed << "/" << cuts.size() + 1
            << " kill points recovered bit-identically\n";
  return true;
}

void BM_FaultPlanContactWorks(benchmark::State& state) {
  FaultPlan plan(9);
  plan.set_contact_loss(0.3);
  for (int i = 0; i < 16; ++i) {
    plan.add_outage({static_cast<VertexId>(i * 7), static_cast<TimeUnit>(i),
                     static_cast<TimeUnit>(i + 10)});
  }
  std::uint64_t q = 0;
  for (auto _ : state) {
    const auto u = static_cast<VertexId>(q % 128);
    const auto v = static_cast<VertexId>((q * 31) % 128);
    benchmark::DoNotOptimize(
        plan.contact_works(u, v, static_cast<TimeUnit>(q % 64)));
    ++q;
  }
}
BENCHMARK(BM_FaultPlanContactWorks);

void BM_DegradedTrace(benchmark::State& state) {
  Rng rng(3);
  EdgeMarkovianParams params;
  params.nodes = static_cast<std::size_t>(state.range(0));
  params.horizon = 64;
  const TemporalGraph trace = edge_markovian_graph(params, rng);
  FaultPlan plan(9);
  plan.set_contact_loss(0.25);
  for (auto _ : state) {
    benchmark::DoNotOptimize(plan.degraded(trace));
  }
}
BENCHMARK(BM_DegradedTrace)->Range(64, 512);

}  // namespace
}  // namespace structnet

int main(int argc, char** argv) {
  bool smoke = false;
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--smoke") {
      smoke = true;
      continue;
    }
    argv[kept++] = argv[i];
  }
  argc = kept;

  // The recovery gate runs first: a bench binary that cannot restore its
  // own checkpoints has nothing meaningful to measure.
  if (!structnet::crash_recovery_gate(smoke ? 15 : 40)) return 1;
  if (!structnet::wal_crash_matrix_gate(smoke)) return 1;
  structnet::delivery_vs_loss_table(smoke);
  structnet::percolation_table(smoke);
  structnet::checkpoint_throughput_table(smoke);
  structnet::wal_throughput_table(smoke);
  structnet::wal_recovery_table(smoke);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  structnet::obs::emit_json(std::cout);
  return 0;
}
