// Experiment E1 / E1b (Fig. 1, Sec. II-A): interval graphs of online
// sessions and the interval-hypergraph cardinality distribution.
//
// Emits:
//   * the Fig. 1 example graph facts;
//   * interval-graph construction scaling (google-benchmark);
//   * hyperedge cardinality distributions vs session density (the
//     paper's open question: "what type of distribution of hyperedge
//     cardinality will follow?").
#include <benchmark/benchmark.h>

#include <iostream>

#include "algo/chordal.hpp"
#include "intersection/interval_graph.hpp"
#include "intersection/interval_hypergraph.hpp"
#include "intersection/sessions.hpp"
#include "util/table.hpp"

namespace structnet {
namespace {

void BM_IntervalGraphBuild(benchmark::State& state) {
  Rng rng(1);
  SessionModel model;
  model.users = static_cast<std::size_t>(state.range(0));
  model.sessions_per_user = 1;
  model.horizon = 1000.0;
  model.mean_duration = 10.0;
  const auto flat = flatten_sessions(generate_sessions(model, rng));
  for (auto _ : state) {
    benchmark::DoNotOptimize(interval_graph(flat));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_IntervalGraphBuild)->Range(64, 4096)->Complexity();

void BM_HyperedgeExtraction(benchmark::State& state) {
  Rng rng(2);
  SessionModel model;
  model.users = static_cast<std::size_t>(state.range(0));
  model.sessions_per_user = 2;
  const auto flat = flatten_sessions(generate_sessions(model, rng));
  for (auto _ : state) {
    benchmark::DoNotOptimize(interval_hyperedges(flat));
  }
}
BENCHMARK(BM_HyperedgeExtraction)->Range(64, 2048);

void fig1_table() {
  const std::vector<Interval> iv{
      {0.0, 4.0}, {7.0, 9.0}, {3.0, 8.0}, {2.0, 5.0}};
  const Graph g = interval_graph(iv);
  Table t({"fact", "value"});
  t.add_row({"vertices (users A-D)", Table::num(std::uint64_t(g.vertex_count()))});
  t.add_row({"edges", Table::num(std::uint64_t(g.edge_count()))});
  t.add_row({"chordal (must be)", is_chordal(g) ? "yes" : "NO"});
  const auto hyper = interval_hyperedges(iv);
  t.add_row({"maximal hyperedges", Table::num(std::uint64_t(hyper.size()))});
  std::size_t triple = 0;
  for (const auto& h : hyper) triple += h.size() == 3;
  t.add_row({"triple hyperedge {A,C,D}", triple ? "present" : "MISSING"});
  t.print(std::cout, "E1: Fig. 1 interval graph of an online social network");
}

void cardinality_table() {
  Table t({"sessions/user", "mean_card", "max_card", "P(card=1)", "P(card>=3)",
           "hyperedges"});
  Rng rng(3);
  for (std::size_t spu : {1, 2, 4, 8}) {
    SessionModel model;
    model.users = 400;
    model.sessions_per_user = spu;
    model.horizon = 2000.0;
    model.mean_duration = 10.0;
    const auto flat = flatten_sessions(generate_sessions(model, rng));
    const auto hyper = interval_hyperedges(flat);
    const auto hist = hyperedge_cardinality_distribution(hyper);
    t.add_row({Table::num(std::uint64_t(spu)), Table::num(hist.mean(), 2),
               Table::num(hist.max_value()), Table::num(hist.fraction(1), 3),
               Table::num(hist.ccdf(3), 3),
               Table::num(std::uint64_t(hyper.size()))});
  }
  t.print(std::cout,
          "E1b: hyperedge cardinality vs session density "
          "(denser presence -> heavier hyperedge tail)");
}

void chordality_table() {
  // Every single-interval graph is chordal; multiple-interval graphs
  // escape (the structural boundary the paper highlights).
  Table t({"model", "chordal_fraction", "trials"});
  Rng rng(4);
  int single_ok = 0, multi_chordal = 0;
  const int trials = 50;
  for (int i = 0; i < trials; ++i) {
    SessionModel model;
    model.users = 60;
    model.sessions_per_user = 1;
    single_ok += is_chordal(interval_graph(
        flatten_sessions(generate_sessions(model, rng))));
    model.sessions_per_user = 3;
    multi_chordal +=
        is_chordal(multiple_interval_graph(generate_sessions(model, rng)));
  }
  t.add_row({"single-interval", Table::num(single_ok / double(trials), 2),
             Table::num(std::uint64_t(trials))});
  t.add_row({"multiple-interval", Table::num(multi_chordal / double(trials), 2),
             Table::num(std::uint64_t(trials))});
  t.print(std::cout,
          "E1: chordality boundary (interval graphs are always chordal; "
          "multi-interval graphs are not)");
}

}  // namespace
}  // namespace structnet

int main(int argc, char** argv) {
  structnet::fig1_table();
  structnet::cardinality_table();
  structnet::chordality_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
