// Shared benchmark output helpers.
//
// Every bench binary prints human-readable tables (util/table.hpp) AND
// machine-readable JSON lines so BENCH_*.json trajectories can be
// captured by simply grepping stdout for lines starting with '{'. The
// canonical record is {"bench": <name>, "n": <size>, "ns_per_op": <ns>}
// plus any extra fields a bench wants to attach.
#pragma once

#include <chrono>
#include <cstdint>
#include <iostream>
#include <sstream>
#include <string>
#include <string_view>
#include <utility>

namespace structnet {

/// Builder for one JSON benchmark line. Field order is insertion order;
/// `bench` always comes first.
class BenchJson {
 public:
  explicit BenchJson(std::string_view bench) {
    out_ << "{\"bench\": \"" << bench << '"';
  }

  BenchJson& field(std::string_view key, double value) {
    out_ << ", \"" << key << "\": " << value;
    return *this;
  }
  BenchJson& field(std::string_view key, std::uint64_t value) {
    out_ << ", \"" << key << "\": " << value;
    return *this;
  }
  BenchJson& field(std::string_view key, std::string_view value) {
    out_ << ", \"" << key << "\": \"" << value << '"';
    return *this;
  }

  /// Prints the record as a single line (flushed so partial runs still
  /// leave parseable output).
  void emit(std::ostream& os = std::cout) {
    os << out_.str() << "}" << std::endl;
  }

 private:
  std::ostringstream out_;
};

/// Convenience for the canonical record shape.
inline void bench_json_line(std::string_view bench, std::uint64_t n,
                            double ns_per_op) {
  BenchJson(bench).field("n", n).field("ns_per_op", ns_per_op).emit();
}

/// Wall-clock timing of `ops` repetitions of `fn`; returns ns per op.
template <typename Fn>
double time_ns_per_op(std::size_t ops, Fn&& fn) {
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < ops; ++i) fn(i);
  const auto stop = std::chrono::steady_clock::now();
  const auto ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(stop - start)
          .count();
  return ops == 0 ? 0.0
                  : static_cast<double>(ns) / static_cast<double>(ops);
}

}  // namespace structnet
