// Shared benchmark output helpers.
//
// Every bench binary prints human-readable tables (util/table.hpp) AND
// machine-readable JSON lines so BENCH_*.json trajectories can be
// captured by simply grepping stdout for lines starting with '{'. The
// canonical record is {"bench": <name>, "n": <size>, "ns_per_op": <ns>}
// plus any extra fields a bench wants to attach.
#pragma once

#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>
#include <string_view>
#include <utility>

namespace structnet {

/// Builder for one JSON benchmark line. Field order is insertion order;
/// `bench` always comes first.
class BenchJson {
 public:
  explicit BenchJson(std::string_view bench) {
    out_ << "{\"bench\": ";
    append_string(bench);
  }

  BenchJson& field(std::string_view key, double value) {
    append_key(key);
    // Default stream formatting rounds to 6 significant digits and
    // flips to scientific notation for large values (ns_per_op easily
    // exceeds 1e6), silently corrupting BENCH_*.json trajectories. Emit
    // fixed notation with 6 fractional digits instead; non-finite
    // doubles have no JSON spelling, so they become null.
    if (!std::isfinite(value)) {
      out_ << "null";
      return *this;
    }
    char buf[352];  // fixed notation of the largest double fits
    std::snprintf(buf, sizeof(buf), "%.6f", value);
    out_ << buf;
    return *this;
  }
  BenchJson& field(std::string_view key, std::uint64_t value) {
    append_key(key);
    out_ << value;
    return *this;
  }
  BenchJson& field(std::string_view key, std::string_view value) {
    append_key(key);
    append_string(value);
    return *this;
  }

  /// Prints the record as a single line (flushed so partial runs still
  /// leave parseable output).
  void emit(std::ostream& os = std::cout) {
    os << out_.str() << "}" << std::endl;
  }

 private:
  void append_key(std::string_view key) {
    out_ << ", ";
    append_string(key);
    out_ << ": ";
  }

  /// JSON string literal with quote/backslash/control escaping.
  void append_string(std::string_view s) {
    out_ << '"';
    for (const char c : s) {
      switch (c) {
        case '"':
          out_ << "\\\"";
          break;
        case '\\':
          out_ << "\\\\";
          break;
        case '\n':
          out_ << "\\n";
          break;
        case '\t':
          out_ << "\\t";
          break;
        case '\r':
          out_ << "\\r";
          break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x",
                          static_cast<unsigned>(c));
            out_ << buf;
          } else {
            out_ << c;
          }
      }
    }
    out_ << '"';
  }

  std::ostringstream out_;
};

/// Convenience for the canonical record shape.
inline void bench_json_line(std::string_view bench, std::uint64_t n,
                            double ns_per_op) {
  BenchJson(bench).field("n", n).field("ns_per_op", ns_per_op).emit();
}

/// Wall-clock timing of `ops` repetitions of `fn`; returns ns per op.
template <typename Fn>
double time_ns_per_op(std::size_t ops, Fn&& fn) {
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < ops; ++i) fn(i);
  const auto stop = std::chrono::steady_clock::now();
  const auto ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(stop - start)
          .count();
  return ops == 0 ? 0.0
                  : static_cast<double>(ns) / static_cast<double>(ops);
}

}  // namespace structnet
