// Shared benchmark output helpers.
//
// Every bench binary prints human-readable tables (util/table.hpp) AND
// machine-readable JSON lines so BENCH_*.json trajectories can be
// captured by simply grepping stdout for lines starting with '{'. The
// canonical record is {"bench": <name>, "n": <size>, "ns_per_op": <ns>}
// plus any extra fields a bench wants to attach; records that exercise
// the parallel layer also carry a "threads" field (stamped uniformly
// via BenchJson::threads so trajectories never guess the concurrency a
// number was measured at).
#pragma once

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string_view>
#include <thread>

#include "util/json_line.hpp"

namespace structnet {

/// Default value of the "threads" BENCH JSON field: STRUCTNET_THREADS
/// from the environment when set, else hardware concurrency — the same
/// resolution rule as parallel::resolve_threads(0), duplicated here so
/// every bench binary can stamp its lines without linking the parallel
/// layer.
inline std::uint64_t bench_default_threads() {
  if (const char* env = std::getenv("STRUCTNET_THREADS")) {
    char* end = nullptr;
    const unsigned long parsed = std::strtoul(env, &end, 10);
    if (end != env && *end == '\0' && parsed > 0) return parsed;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

/// Builder for one JSON benchmark line. Field order is insertion order;
/// `bench` always comes first.
class BenchJson {
 public:
  explicit BenchJson(std::string_view bench) { line_.field("bench", bench); }

  BenchJson& field(std::string_view key, double value) {
    line_.field(key, value);
    return *this;
  }
  BenchJson& field(std::string_view key, std::uint64_t value) {
    line_.field(key, value);
    return *this;
  }
  BenchJson& field(std::string_view key, std::string_view value) {
    line_.field(key, value);
    return *this;
  }

  /// Stamps the uniform "threads" field: the concurrency the measurement
  /// ran at, or (when 0) the default every kernel resolves to.
  BenchJson& threads(std::uint64_t value = 0) {
    line_.field("threads", value > 0 ? value : bench_default_threads());
    return *this;
  }

  /// Prints the record as a single line (flushed so partial runs still
  /// leave parseable output).
  void emit(std::ostream& os = std::cout) { line_.emit(os); }

 private:
  JsonLineWriter line_;
};

/// Convenience for the canonical record shape. `threads` is the
/// concurrency the measured operation actually used — most canonical
/// one-kernel measurements are serial, hence the default of 1; pass 0
/// for "whatever the parallel layer resolves to by default".
inline void bench_json_line(std::string_view bench, std::uint64_t n,
                            double ns_per_op, std::uint64_t threads = 1) {
  BenchJson(bench)
      .field("n", n)
      .field("ns_per_op", ns_per_op)
      .threads(threads)
      .emit();
}

/// Wall-clock timing of `ops` repetitions of `fn`; returns ns per op.
template <typename Fn>
double time_ns_per_op(std::size_t ops, Fn&& fn) {
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < ops; ++i) fn(i);
  const auto stop = std::chrono::steady_clock::now();
  const auto ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(stop - start)
          .count();
  return ops == 0 ? 0.0
                  : static_cast<double>(ns) / static_cast<double>(ops);
}

}  // namespace structnet
