// Experiment E3b (Sec. III-A): static trimming of time-evolving graphs
// — how much of the EG the node/link/label rules remove while provably
// preserving earliest completion times — plus UDG topology control.
#include <benchmark/benchmark.h>

#include <iostream>

#include "algo/components.hpp"
#include "core/generators.hpp"
#include "mobility/contact_trace.hpp"
#include "mobility/mobility_models.hpp"
#include "temporal/fig2_example.hpp"
#include "temporal/temporal_centrality.hpp"
#include "trimming/eg_trimming.hpp"
#include "trimming/spanner.hpp"
#include "trimming/topology_control.hpp"
#include "util/table.hpp"

namespace structnet {
namespace {

void fig2_trimming_table() {
  const auto eg = fig2::build();
  const std::vector<double> prio{6, 5, 4, 3, 2, 1};
  Table t({"claim", "holds"});
  t.add_row({"A can ignore neighbor D (link rule)",
             can_ignore_neighbor(eg, fig2::A, fig2::D, prio) ? "yes" : "NO"});
  t.add_row({"D cannot ignore A",
             !can_ignore_neighbor(eg, fig2::D, fig2::A, prio) ? "yes" : "NO"});
  t.add_row({"node D not trimmable (B-0->D-0->C unprotected)",
             !can_trim_node(eg, fig2::D, prio) ? "yes" : "NO"});
  t.print(std::cout, "E3b: Fig. 2 trimming claims");
}

void trimming_sweep() {
  Table t({"radius", "nodes", "labels", "nodes_trimmed", "links_trimmed",
           "labels_trimmed", "completion_preserved"});
  Rng rng(1);
  for (double radius : {0.3, 0.4, 0.5}) {
    RandomWaypointParams p;
    p.nodes = 12;
    p.steps = 16;
    const auto traj = random_waypoint(p, rng);
    const auto eg = contacts_from_trajectory(traj, radius);
    std::size_t labels = 0;
    for (const auto& e : eg.edges()) labels += e.labels.size();
    std::vector<double> prio(p.nodes);
    for (std::size_t v = 0; v < p.nodes; ++v) {
      prio[v] = static_cast<double>(p.nodes - v);
    }
    const auto nodes = trim_nodes(eg, prio);
    const auto links = trim_links(eg, prio);
    const auto lbls = trim_labels(eg);
    std::vector<bool> alive(p.nodes, true);
    for (VertexId v : nodes.removed_nodes) alive[v] = false;
    // Nodes & labels preserve exact completion; links preserve
    // reachability (endpoint arrivals may slip — see EXPERIMENTS.md).
    const bool ok_nodes = preserves_reachability(eg, nodes.trimmed, alive, true);
    const std::vector<bool> all(p.nodes, true);
    const bool ok_links = preserves_reachability(eg, links.trimmed, all, false);
    const bool ok_labels = preserves_reachability(eg, lbls.trimmed, all, true);
    t.add_row({Table::num(radius, 2), Table::num(std::uint64_t(p.nodes)),
               Table::num(std::uint64_t(labels)),
               Table::num(std::uint64_t(nodes.removed_nodes.size())),
               Table::num(std::uint64_t(links.removed_links.size())),
               Table::num(std::uint64_t(lbls.removed_labels)),
               (ok_nodes && ok_links && ok_labels) ? "yes" : "NO"});
  }
  t.print(std::cout,
          "E3b: trimming yield on RWP traces (denser traces carry more "
          "removable redundancy; preservation always holds)");
}

void topology_control_table() {
  Table t({"n", "udg_edges", "gabriel_edges", "rng_edges", "gg_stretch_avg",
           "rng_stretch_avg", "all_connected"});
  Rng rng(2);
  for (std::size_t n : {100, 200, 400}) {
    std::vector<Point2D> pts;
    Graph g = random_geometric(n, 0.3, rng, &pts);
    const auto mask = largest_component_mask(g);
    std::vector<VertexId> map;
    const Graph comp = g.induced_subgraph(mask, &map);
    std::vector<Point2D> cpts;
    for (std::size_t v = 0; v < pts.size(); ++v) {
      if (mask[v]) cpts.push_back(pts[v]);
    }
    const Graph gg = gabriel_graph(comp, cpts);
    const Graph rg = relative_neighborhood_graph(comp, cpts);
    const auto s1 = hop_stretch(comp, gg);
    const auto s2 = hop_stretch(comp, rg);
    const bool connected = is_connected(gg) && is_connected(rg);
    t.add_row({Table::num(std::uint64_t(comp.vertex_count())),
               Table::num(std::uint64_t(comp.edge_count())),
               Table::num(std::uint64_t(gg.edge_count())),
               Table::num(std::uint64_t(rg.edge_count())),
               Table::num(s1.average, 3), Table::num(s2.average, 3),
               connected ? "yes" : "NO"});
  }
  t.print(std::cout,
          "E3b: UDG topology control — sparser structures, bounded hop "
          "stretch, connectivity preserved");
}

void priority_ablation() {
  // Sec. III-A: "We can also assign priority, say using node degree or
  // node betweenness, based on the strategic importance of the node."
  // Which priority ordering lets the node rule trim the most?
  Table t({"priority", "avg_nodes_trimmed", "avg_links_trimmed"});
  struct Acc {
    double nodes = 0.0, links = 0.0;
  };
  Acc by_id, by_degree, by_betweenness;
  Rng rng(7);
  const int trials = 6;
  for (int trial = 0; trial < trials; ++trial) {
    RandomWaypointParams p;
    p.nodes = 12;
    p.steps = 14;
    const auto eg = contacts_from_trajectory(random_waypoint(p, rng), 0.4);
    auto jitter = [&](std::vector<double> base) {
      for (std::size_t v = 0; v < base.size(); ++v) {
        base[v] += 1e-6 * static_cast<double>(v);  // make distinct
      }
      return base;
    };
    std::vector<double> id(p.nodes);
    for (std::size_t v = 0; v < p.nodes; ++v) id[v] = double(p.nodes - v);
    const auto deg = jitter(temporal_degree(eg));
    const auto btw = jitter(temporal_betweenness(eg));
    auto run = [&](const std::vector<double>& prio, Acc& acc) {
      acc.nodes += static_cast<double>(trim_nodes(eg, prio).removed_nodes.size());
      acc.links += static_cast<double>(trim_links(eg, prio).removed_links.size());
    };
    run(id, by_id);
    run(deg, by_degree);
    run(btw, by_betweenness);
  }
  auto row = [&](const std::string& name, const Acc& acc) {
    t.add_row({name, Table::num(acc.nodes / trials, 2),
               Table::num(acc.links / trials, 2)});
  };
  row("node id (paper default)", by_id);
  row("temporal degree", by_degree);
  row("temporal betweenness", by_betweenness);
  t.print(std::cout,
          "E3b ablation: trimming yield by priority signal — protecting "
          "high-betweenness relays lets more of the rest go");
}

void khop_horizon_table() {
  // "The price of being near-sighted" [27]: how much trimming does a
  // k-hop information horizon buy compared to global knowledge?
  Table t({"k (hops of local info)", "links_ignorable", "of_global"});
  Rng rng(9);
  RandomWaypointParams p;
  p.nodes = 16;
  p.steps = 14;
  const auto eg = contacts_from_trajectory(random_waypoint(p, rng), 0.3);
  std::vector<double> prio(p.nodes);
  for (std::size_t v = 0; v < p.nodes; ++v) prio[v] = double(p.nodes - v);
  // Count directional ignore decisions across all adjacent pairs.
  auto count_khop = [&](std::uint32_t k) {
    std::size_t ignorable = 0;
    for (const auto& edge : eg.edges()) {
      ignorable += can_ignore_neighbor_khop(eg, edge.u, edge.v, prio, k);
      ignorable += can_ignore_neighbor_khop(eg, edge.v, edge.u, prio, k);
    }
    return ignorable;
  };
  std::size_t global = 0;
  for (const auto& edge : eg.edges()) {
    global += can_ignore_neighbor(eg, edge.u, edge.v, prio);
    global += can_ignore_neighbor(eg, edge.v, edge.u, prio);
  }
  for (std::uint32_t k : {1, 2, 3, 5}) {
    const auto c = count_khop(k);
    t.add_row({Table::num(std::uint64_t(k)), Table::num(std::uint64_t(c)),
               Table::num(global ? double(c) / double(global) : 1.0, 3)});
  }
  t.add_row({"global", Table::num(std::uint64_t(global)), "1.000"});
  t.print(std::cout,
          "E3b: the price of being near-sighted [27] — trimming power vs "
          "information horizon (2-hop already captures most of it)");
}

void spanner_table() {
  // Sec. III-A's distance-preservation flavor of trimming [8].
  Table t({"stretch", "kept_edges", "of_total", "spanner_property"});
  Rng rng(8);
  std::vector<Point2D> pts;
  Graph g = random_geometric(120, 0.25, rng, &pts);
  std::vector<double> w;
  for (const auto& e : g.edges()) w.push_back(distance(pts[e.u], pts[e.v]));
  for (double stretch : {1.2, 1.5, 2.0, 3.0, 5.0}) {
    const auto kept = greedy_spanner(g, w, stretch);
    const Graph sub = subgraph_of_edges(g, kept);
    std::vector<double> sw;
    for (EdgeId e : kept) sw.push_back(w[e]);
    t.add_row({Table::num(stretch, 1), Table::num(std::uint64_t(kept.size())),
               Table::num(double(kept.size()) / double(g.edge_count()), 3),
               is_spanner(g, w, sub, sw, stretch) ? "holds" : "VIOLATED"});
  }
  t.print(std::cout,
          "E3b: greedy t-spanners of a UDG — distance-preserving "
          "trimming; larger stretch budgets buy sparser backbones");
}

void BM_TrimNodes(benchmark::State& state) {
  Rng rng(3);
  RandomWaypointParams p;
  p.nodes = static_cast<std::size_t>(state.range(0));
  p.steps = 16;
  const auto eg = contacts_from_trajectory(random_waypoint(p, rng), 0.35);
  std::vector<double> prio(p.nodes);
  for (std::size_t v = 0; v < p.nodes; ++v) prio[v] = double(p.nodes - v);
  for (auto _ : state) {
    benchmark::DoNotOptimize(trim_nodes(eg, prio));
  }
}
BENCHMARK(BM_TrimNodes)->Arg(8)->Arg(12)->Arg(16);

void BM_GabrielGraph(benchmark::State& state) {
  Rng rng(4);
  std::vector<Point2D> pts;
  const Graph g = random_geometric(static_cast<std::size_t>(state.range(0)),
                                   0.15, rng, &pts);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gabriel_graph(g, pts));
  }
}
BENCHMARK(BM_GabrielGraph)->Range(128, 2048);

}  // namespace
}  // namespace structnet

int main(int argc, char** argv) {
  structnet::fig2_trimming_table();
  structnet::trimming_sweep();
  structnet::priority_ablation();
  structnet::khop_horizon_table();
  structnet::topology_control_table();
  structnet::spanner_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
