// Experiment E5 (Fig. 5, Sec. III-C): remapping representation.
// Euclidean greedy routing gets stuck at non-convex holes; greedy on
// remapped (spanning-tree virtual) coordinates always delivers. The
// tree embedding stands in for the hyperbolic/Ricci-flow embeddings of
// [19]/[20] (see DESIGN.md substitutions).
#include <benchmark/benchmark.h>

#include <iostream>

#include "algo/components.hpp"
#include "algo/traversal.hpp"
#include "core/generators.hpp"
#include "remapping/geo_routing.hpp"
#include "remapping/tree_embedding.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace structnet {
namespace {

struct Field {
  Graph graph;
  std::vector<Point2D> positions;
};

Field make_field(std::size_t n, double radius, bool with_hole, Rng& rng) {
  Field f;
  if (with_hole) {
    const auto holes = u_shaped_hole();
    Graph g = random_geometric_with_holes(n, radius, holes, rng, &f.positions);
    const auto mask = largest_component_mask(g);
    std::vector<VertexId> map;
    f.graph = g.induced_subgraph(mask, &map);
    std::vector<Point2D> pts;
    for (std::size_t v = 0; v < f.positions.size(); ++v) {
      if (mask[v]) pts.push_back(f.positions[v]);
    }
    f.positions = std::move(pts);
  } else {
    Graph g = random_geometric(n, radius, rng, &f.positions);
    const auto mask = largest_component_mask(g);
    std::vector<VertexId> map;
    f.graph = g.induced_subgraph(mask, &map);
    std::vector<Point2D> pts;
    for (std::size_t v = 0; v < f.positions.size(); ++v) {
      if (mask[v]) pts.push_back(f.positions[v]);
    }
    f.positions = std::move(pts);
  }
  return f;
}

void delivery_table() {
  Table t({"field", "n", "euclid_success", "remap_success", "euclid_stretch",
           "remap_stretch"});
  Rng rng(1);
  for (const bool with_hole : {false, true}) {
    const auto f = make_field(600, 0.07, with_hole, rng);
    const TreeEmbedding emb(f.graph, 0);
    Rng pick(2);
    std::size_t e_ok = 0, r_ok = 0, total = 0;
    RunningStats e_stretch, r_stretch;
    for (int trial = 0; trial < 300; ++trial) {
      const auto s = static_cast<VertexId>(pick.index(f.graph.vertex_count()));
      const auto d = static_cast<VertexId>(pick.index(f.graph.vertex_count()));
      if (s == d) continue;
      ++total;
      const auto hops = bfs_distances(f.graph, s)[d];
      const auto re = greedy_route_euclidean(f.graph, f.positions, s, d);
      const auto rv = emb.greedy_route(f.graph, s, d);
      if (re.delivered) {
        ++e_ok;
        e_stretch.add(double(re.path.size() - 1) / double(hops));
      }
      if (rv.delivered) {
        ++r_ok;
        r_stretch.add(double(rv.path.size() - 1) / double(hops));
      }
    }
    t.add_row({with_hole ? "U-hole (Fig. 5a)" : "open field",
               Table::num(std::uint64_t(f.graph.vertex_count())),
               Table::num(double(e_ok) / double(total), 3),
               Table::num(double(r_ok) / double(total), 3),
               Table::num(e_stretch.mean(), 2),
               Table::num(r_stretch.mean(), 2)});
  }
  t.print(std::cout,
          "E5: Fig. 5 — Euclidean greedy fails at non-convex holes; "
          "remapped greedy always delivers (remap success must be 1.0)");
}

void density_sweep() {
  Table t({"radius", "euclid_success", "remap_success"});
  Rng rng(3);
  for (double radius : {0.055, 0.07, 0.09, 0.12}) {
    const auto f = make_field(600, radius, true, rng);
    const TreeEmbedding emb(f.graph, 0);
    Rng pick(4);
    std::size_t e_ok = 0, r_ok = 0, total = 0;
    for (int trial = 0; trial < 200; ++trial) {
      const auto s = static_cast<VertexId>(pick.index(f.graph.vertex_count()));
      const auto d = static_cast<VertexId>(pick.index(f.graph.vertex_count()));
      if (s == d) continue;
      ++total;
      e_ok += greedy_route_euclidean(f.graph, f.positions, s, d).delivered;
      r_ok += emb.greedy_route(f.graph, s, d).delivered;
    }
    t.add_row({Table::num(radius, 3), Table::num(double(e_ok) / total, 3),
               Table::num(double(r_ok) / total, 3)});
  }
  t.print(std::cout,
          "E5: radio-range sweep around the hole (denser graphs ease "
          "Euclidean greedy; remapping stays at 1.0)");
}

void BM_EuclideanGreedy(benchmark::State& state) {
  Rng rng(5);
  const auto f = make_field(static_cast<std::size_t>(state.range(0)), 0.08,
                            false, rng);
  VertexId s = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(greedy_route_euclidean(
        f.graph, f.positions, s,
        static_cast<VertexId>(f.graph.vertex_count() - 1 - s)));
    s = static_cast<VertexId>((s + 1) % (f.graph.vertex_count() / 2));
  }
}
BENCHMARK(BM_EuclideanGreedy)->Arg(256)->Arg(1024);

void BM_TreeEmbeddingBuild(benchmark::State& state) {
  Rng rng(6);
  const auto f = make_field(static_cast<std::size_t>(state.range(0)), 0.08,
                            false, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(TreeEmbedding(f.graph, 0));
  }
}
BENCHMARK(BM_TreeEmbeddingBuild)->Arg(256)->Arg(1024);

void BM_TreeGreedyRoute(benchmark::State& state) {
  Rng rng(7);
  const auto f = make_field(1024, 0.08, true, rng);
  const TreeEmbedding emb(f.graph, 0);
  VertexId s = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(emb.greedy_route(
        f.graph, s, static_cast<VertexId>(f.graph.vertex_count() - 1 - s)));
    s = static_cast<VertexId>((s + 1) % (f.graph.vertex_count() / 2));
  }
}
BENCHMARK(BM_TreeGreedyRoute);

}  // namespace
}  // namespace structnet

int main(int argc, char** argv) {
  structnet::delivery_table();
  structnet::density_sweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
