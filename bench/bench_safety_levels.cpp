// Experiment E9 (Fig. 9, Sec. IV-C): safety levels in faulty
// hypercubes. Replays the reconstructed Fig. 9, then sweeps fault
// counts: labeling rounds (<= n-1), routing success by source level, and
// broadcast coverage/messages.
#include <benchmark/benchmark.h>

#include <iostream>

#include "labeling/fig9_example.hpp"
#include "labeling/safety_levels.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace structnet {
namespace {

void fig9_table() {
  const SafetyLevelCube cube(fig9::kDimensions, fig9::faulty_nodes());
  Table t({"fact", "paper_says", "computed"});
  t.add_row({"level(0101)", "2", Table::num(std::uint64_t(cube.level(0b0101)))});
  const auto path = cube.route(0b1101, 0b0001);
  std::string p;
  if (path) {
    for (std::size_t v : *path) {
      p += std::to_string(v) + " ";
    }
  }
  t.add_row({"route 1101->0001 via", "0101", path ? p : "FAILED"});
  t.add_row({"rounds used", "<= 3", Table::num(std::uint64_t(cube.rounds_used()))});
  t.print(std::cout, "E9: Fig. 9 replay (addresses printed in decimal)");

  Table lv({"level", "nodes"});
  std::vector<std::size_t> count(fig9::kDimensions + 1, 0);
  for (std::size_t v = 0; v < cube.node_count(); ++v) ++count[cube.level(v)];
  for (std::size_t l = 0; l <= fig9::kDimensions; ++l) {
    lv.add_row({Table::num(std::uint64_t(l)), Table::num(std::uint64_t(count[l]))});
  }
  lv.print(std::cout, "E9: level histogram of the Fig. 9 cube");
}

void fault_sweep() {
  const std::size_t n = 7;  // 128-node cube
  Table t({"faults", "avg_safe_nodes", "rounds", "route_success",
           "route_success_guaranteed_pairs", "broadcast_coverage"});
  Rng rng(1);
  for (std::size_t faults : {1, 4, 8, 16, 32}) {
    RunningStats safe, rounds, success, guaranteed, coverage;
    for (int trial = 0; trial < 10; ++trial) {
      std::vector<std::size_t> faulty;
      for (auto f : rng.sample_without_replacement(1u << n, faults)) {
        faulty.push_back(f);
      }
      const SafetyLevelCube cube(n, faulty);
      rounds.add(static_cast<double>(cube.rounds_used()));
      std::size_t safe_count = 0;
      for (std::size_t v = 0; v < cube.node_count(); ++v) {
        safe_count += cube.level(v) == n;
      }
      safe.add(static_cast<double>(safe_count));
      // Routing success over random pairs.
      std::size_t ok = 0, total = 0, gok = 0, gtotal = 0;
      for (int pair = 0; pair < 200; ++pair) {
        const auto s = static_cast<std::size_t>(rng.index(1u << n));
        const auto d = static_cast<std::size_t>(rng.index(1u << n));
        if (s == d || cube.is_faulty(s) || cube.is_faulty(d)) continue;
        ++total;
        const auto path = cube.route(s, d);
        const bool shortest =
            path && path->size() - 1 == SafetyLevelCube::hamming(s, d);
        ok += shortest;
        if (cube.level(s) >= SafetyLevelCube::hamming(s, d)) {
          ++gtotal;
          gok += shortest;
        }
      }
      if (total) success.add(double(ok) / double(total));
      if (gtotal) guaranteed.add(double(gok) / double(gtotal));
      // Broadcast coverage from the first safe node (or node 0).
      std::size_t src = 0;
      for (std::size_t v = 0; v < cube.node_count(); ++v) {
        if (cube.level(v) == n) {
          src = v;
          break;
        }
      }
      if (!cube.is_faulty(src)) {
        const auto b = cube.broadcast(src);
        std::size_t reached = 0, alive = 0;
        for (std::size_t v = 0; v < cube.node_count(); ++v) {
          if (!cube.is_faulty(v)) {
            ++alive;
            reached += b.reached[v];
          }
        }
        coverage.add(double(reached) / double(alive));
      }
    }
    t.add_row({Table::num(std::uint64_t(faults)), Table::num(safe.mean(), 1),
               Table::num(rounds.mean(), 1), Table::num(success.mean(), 3),
               Table::num(guaranteed.mean(), 3),
               Table::num(coverage.mean(), 3)});
  }
  t.print(std::cout,
          "E9: 7-cube fault sweep — guaranteed pairs always route "
          "optimally (1.000); overall success degrades gracefully; "
          "broadcast coverage stays complete");
}

void rounds_vs_dimension() {
  Table t({"dimension", "max_rounds_observed", "paper_bound(n-1)"});
  Rng rng(2);
  for (std::size_t n : {4, 5, 6, 7, 8}) {
    std::size_t worst = 0;
    for (int trial = 0; trial < 20; ++trial) {
      const std::size_t faults = 1 + rng.index(std::size_t{1} << (n - 2));
      std::vector<std::size_t> faulty;
      for (auto f : rng.sample_without_replacement(std::size_t{1} << n,
                                                   faults)) {
        faulty.push_back(f);
      }
      const SafetyLevelCube cube(n, faulty);
      worst = std::max(worst, cube.rounds_used());
    }
    t.add_row({Table::num(std::uint64_t(n)), Table::num(std::uint64_t(worst)),
               Table::num(std::uint64_t(n - 1))});
  }
  t.print(std::cout, "E9: labeling rounds stay within the paper's n-1 bound");
}

void incremental_churn_table() {
  // Dynamic fault injection: the incremental restabilization touches a
  // small affected region instead of the whole cube (cf. the paper's
  // call to "integrate the process of building a structure with the
  // change of topology").
  Table t({"dimension", "avg_levels_changed_per_fault", "cube_size"});
  Rng rng(5);
  for (std::size_t n : {6, 8, 10}) {
    RunningStats changed;
    for (int trial = 0; trial < 5; ++trial) {
      SafetyLevelCube cube(n, {});
      for (auto f :
           rng.sample_without_replacement(std::size_t{1} << n, 12)) {
        changed.add(static_cast<double>(cube.add_fault(f)));
      }
    }
    t.add_row({Table::num(std::uint64_t(n)), Table::num(changed.mean(), 2),
               Table::num(std::uint64_t(std::size_t{1} << n))});
  }
  t.print(std::cout,
          "E9: incremental safety-level maintenance under fault churn — "
          "per-fault work stays local while the cube grows");
}

void BM_Stabilize(benchmark::State& state) {
  Rng rng(3);
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<std::size_t> faulty;
  for (auto f : rng.sample_without_replacement(std::size_t{1} << n,
                                               std::size_t{1} << (n - 3))) {
    faulty.push_back(f);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(SafetyLevelCube(n, faulty));
  }
}
BENCHMARK(BM_Stabilize)->Arg(6)->Arg(8)->Arg(10);

void BM_Route(benchmark::State& state) {
  Rng rng(4);
  const std::size_t n = 10;
  std::vector<std::size_t> faulty;
  for (auto f : rng.sample_without_replacement(1u << n, 32)) {
    faulty.push_back(f);
  }
  const SafetyLevelCube cube(n, faulty);
  std::size_t s = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cube.route(s, (s * 37) % (1u << n)));
    s = (s + 13) % (1u << n);
  }
}
BENCHMARK(BM_Route);

}  // namespace
}  // namespace structnet

int main(int argc, char** argv) {
  structnet::fig9_table();
  structnet::fault_sweep();
  structnet::rounds_vs_dimension();
  structnet::incremental_churn_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
