// Experiment E11 (Sec. IV-C, [30]): dynamic MIS maintenance under churn
// with random priorities — expected O(1) adjustments per update, versus
// recomputing from scratch.
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_util.hpp"
#include "core/generators.hpp"
#include "labeling/dynamic_mis.hpp"
#include "labeling/static_labels.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace structnet {
namespace {

void churn_table() {
  Table t({"n", "avg_adjustments_per_update", "p99_adjustments",
           "static_mis_rounds", "invariant_held"});
  Rng rng(1);
  for (std::size_t n : {128, 256, 512, 1024}) {
    Graph g = erdos_renyi(n, 6.0 / double(n), rng);
    DynamicMis mis(g, rng);
    std::vector<double> costs;
    for (int update = 0; update < 1500; ++update) {
      const auto u = static_cast<VertexId>(rng.index(n));
      const auto v = static_cast<VertexId>(rng.index(n));
      if (u == v) continue;
      costs.push_back(static_cast<double>(
          mis.has_edge(u, v) ? mis.remove_edge(u, v) : mis.add_edge(u, v)));
    }
    const bool ok = mis.verify();
    // Static baseline: the 3-color algorithm's round count on the final
    // graph (what a recompute-from-scratch would pay, n-proportional
    // work per round).
    std::vector<double> prio(n);
    for (auto& p : prio) p = rng.uniform01();
    Graph now(n);
    for (VertexId a = 0; a < n; ++a) {
      // reconstruct current graph from the maintained adjacency
      for (VertexId b = a + 1; b < n; ++b) {
        if (mis.has_edge(a, b)) now.add_edge(a, b);
      }
    }
    const auto static_mis = distributed_mis(now, prio);
    t.add_row({Table::num(std::uint64_t(n)),
               Table::num(mean_of(costs), 2),
               Table::num(quantile(costs, 0.99), 1),
               Table::num(std::uint64_t(static_mis.rounds)),
               ok ? "yes" : "NO"});
  }
  t.print(std::cout,
          "E11: adjustment cost per update stays flat as n grows "
          "(expected O(1), [30]); a recompute pays log-n rounds over the "
          "whole graph every time");
}

void vertex_churn_table() {
  Table t({"operation", "avg_adjustments"});
  Rng rng(2);
  const std::size_t n = 512;
  Graph g = erdos_renyi(n, 8.0 / double(n), rng);
  DynamicMis mis(g, rng);
  RunningStats ins, del;
  for (int round = 0; round < 300; ++round) {
    const VertexId v = mis.add_vertex(rng);
    for (int e = 0; e < 4; ++e) {
      const auto w = static_cast<VertexId>(rng.index(v));
      if (w != v && !mis.has_edge(v, w)) ins.add(double(mis.add_edge(v, w)));
    }
    del.add(static_cast<double>(
        mis.remove_vertex(static_cast<VertexId>(rng.index(v)))));
  }
  t.add_row({"edge insert (around new vertex)", Table::num(ins.mean(), 2)});
  t.add_row({"vertex delete", Table::num(del.mean(), 2)});
  t.print(std::cout, "E11: vertex-level churn (one-round-in-expectation)");
}

void BM_DynamicUpdate(benchmark::State& state) {
  Rng rng(3);
  const auto n = static_cast<std::size_t>(state.range(0));
  Graph g = erdos_renyi(n, 6.0 / double(n), rng);
  DynamicMis mis(g, rng);
  for (auto _ : state) {
    const auto u = static_cast<VertexId>(rng.index(n));
    const auto v = static_cast<VertexId>(rng.index(n));
    if (u == v) continue;
    benchmark::DoNotOptimize(
        mis.has_edge(u, v) ? mis.remove_edge(u, v) : mis.add_edge(u, v));
  }
}
BENCHMARK(BM_DynamicUpdate)->Range(256, 4096);

void BM_StaticRecompute(benchmark::State& state) {
  Rng rng(4);
  const auto n = static_cast<std::size_t>(state.range(0));
  const Graph g = erdos_renyi(n, 6.0 / double(n), rng);
  std::vector<double> prio(n);
  for (auto& p : prio) p = rng.uniform01();
  for (auto _ : state) {
    benchmark::DoNotOptimize(distributed_mis(g, prio));
  }
}
BENCHMARK(BM_StaticRecompute)->Range(256, 4096);

}  // namespace
}  // namespace structnet

namespace structnet {
namespace {

void json_lines() {
  Rng rng(9);
  for (const std::size_t n : {std::size_t{1024}, std::size_t{4096}}) {
    Graph g = erdos_renyi(n, 6.0 / double(n), rng);
    DynamicMis mis(g, rng);
    bench_json_line(
        "dynamic_mis_update", n, time_ns_per_op(5000, [&](std::size_t) {
          const auto u = static_cast<VertexId>(rng.index(n));
          const auto v = static_cast<VertexId>(rng.index(n));
          if (u == v) return;
          benchmark::DoNotOptimize(mis.has_edge(u, v) ? mis.remove_edge(u, v)
                                                      : mis.add_edge(u, v));
        }));
  }
}

}  // namespace
}  // namespace structnet

int main(int argc, char** argv) {
  structnet::churn_table();
  structnet::vertex_churn_table();
  structnet::json_lines();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
