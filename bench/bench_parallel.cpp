// Speedup curves for the parallel execution layer: every converted
// kernel timed at threads = 1, 2, 4, 8 on the same inputs, with a
// bit-identity check of the parallel result against the serial one.
// JSON lines carry a "threads" field so BENCH trajectories capture the
// curves; the acceptance target is >= 4x at 8 threads for the
// all-sources temporal path-length sweep at n = 10k (hardware
// permitting — "cores" reports what this machine actually has).
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <iostream>

#include "bench_util.hpp"
#include "obs/metrics.hpp"
#include "core/generators.hpp"
#include "layering/nsf.hpp"
#include "parallel/parallel.hpp"
#include "sim/dtn_routing.hpp"
#include "sim/multi_message.hpp"
#include "temporal/smallworld_metrics.hpp"
#include "temporal/temporal_centrality.hpp"
#include "temporal/temporal_graph.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace structnet {
namespace {

constexpr std::size_t kThreadCounts[] = {1, 2, 4, 8};

/// Synthetic contact trace: `contacts_per_unit` random contacts per time
/// unit (mobility generators are O(n^2) per step — too slow at n=10k).
TemporalGraph synthetic_trace(std::size_t n, TimeUnit horizon,
                              std::size_t contacts_per_unit,
                              std::uint64_t seed) {
  TemporalGraph eg(n, horizon);
  Rng rng(seed);
  for (TimeUnit t = 0; t < horizon; ++t) {
    for (std::size_t c = 0; c < contacts_per_unit; ++c) {
      const auto u = static_cast<VertexId>(rng.index(n));
      // Mix local (ring) and long-range contacts so sweeps reach far.
      const auto v = rng.bernoulli(0.7)
                         ? static_cast<VertexId>((u + 1 + rng.index(8)) % n)
                         : static_cast<VertexId>(rng.index(n));
      if (u == v || eg.has_contact(u, v, t)) continue;
      eg.add_contact(u, v, t);
    }
  }
  return eg;
}

/// Times run(threads) per thread count, checks the result equals the
/// serial one via `same`, and emits one JSON line per thread count.
template <typename Run, typename Same>
void sweep(const std::string& name, std::uint64_t n, Table& table, Run&& run,
           Same&& same) {
  double serial_ns = 0.0;
  decltype(run(1)) baseline = run(1);
  for (const std::size_t threads : kThreadCounts) {
    decltype(run(1)) result = baseline;
    const double ns = time_ns_per_op(1, [&](std::size_t) {
      result = run(threads);
      benchmark::DoNotOptimize(result);
    });
    if (threads == 1) serial_ns = ns;
    const bool identical = same(baseline, result);
    const double speedup = ns > 0.0 ? serial_ns / ns : 0.0;
    table.add_row({name, Table::num(n), Table::num(std::uint64_t(threads)),
                   Table::num(ns / 1e6, 1), Table::num(speedup, 2),
                   identical ? "yes" : "NO"});
    BenchJson(name)
        .field("n", n)
        .threads(threads)
        .field("ns_per_op", ns)
        .field("speedup_vs_serial", speedup)
        .field("identical_to_serial", std::uint64_t(identical))
        .field("cores", std::uint64_t(hardware_threads()))
        .emit();
  }
}

void speedup_tables() {
  Table t({"kernel", "n", "threads", "ms", "speedup", "bit-identical"});

  {
    // The acceptance kernel: all-sources earliest-arrival sweep, n=10k.
    const std::size_t n =
        std::getenv("STRUCTNET_BENCH_SMALL") ? 2000 : 10000;
    const auto eg = synthetic_trace(n, 24, 2 * n, 3);
    sweep(
        "parallel_temporal_path_length", n, t,
        [&](std::size_t threads) {
          return characteristic_temporal_path_length(eg, threads);
        },
        [](const TemporalPathLength& a, const TemporalPathLength& b) {
          return a.characteristic_length == b.characteristic_length &&
                 a.reachable_fraction == b.reachable_fraction;
        });
    sweep(
        "parallel_temporal_closeness", n, t,
        [&](std::size_t threads) { return temporal_closeness(eg, threads); },
        [](const std::vector<double>& a, const std::vector<double>& b) {
          return a == b;
        });
  }
  {
    const std::size_t n = 512;
    const auto eg = synthetic_trace(n, 48, 3 * n, 5);
    sweep(
        "parallel_temporal_betweenness", n, t,
        [&](std::size_t threads) { return temporal_betweenness(eg, threads); },
        [](const std::vector<double>& a, const std::vector<double>& b) {
          return a == b;
        });
    SimulationFaults faults;
    faults.loss_probability = 0.2;
    faults.loss_seed = 11;
    sweep(
        "parallel_routing_trials", n, t,
        [&](std::size_t threads) {
          return simulate_routing_trials(eg, 0, static_cast<VertexId>(n - 1),
                                         0, epidemic_strategy(), 1, faults,
                                         64, threads);
        },
        [](const RoutingTrialStats& a, const RoutingTrialStats& b) {
          return a.delivered == b.delivered &&
                 a.mean_delivery_time == b.mean_delivery_time &&
                 a.mean_transmissions == b.mean_transmissions;
        });
    sweep(
        "parallel_workload_ensemble", n, t,
        [&](std::size_t threads) {
          return simulate_workload_ensemble(eg, 16, 32, 7,
                                            spray_and_wait_strategy(), 8, 4,
                                            threads);
        },
        [](const WorkloadEnsemble& a, const WorkloadEnsemble& b) {
          return a.mean_delivery_ratio == b.mean_delivery_ratio &&
                 a.mean_delay == b.mean_delay &&
                 a.mean_transmissions == b.mean_transmissions &&
                 a.mean_drops == b.mean_drops;
        });
  }
  {
    Rng rng(7);
    const Graph g = barabasi_albert(1 << 14, 3, rng);
    sweep(
        "parallel_nsf_report", std::uint64_t(1) << 14, t,
        [&](std::size_t threads) { return nsf_report(g, 0.5, 0.15, threads); },
        [](const NsfReport& a, const NsfReport& b) {
          if (a.sizes != b.sizes || a.exponent_stddev != b.exponent_stddev ||
              a.all_scale_free != b.all_scale_free) {
            return false;
          }
          for (std::size_t r = 0; r < a.fits.size(); ++r) {
            if (a.fits[r].alpha != b.fits[r].alpha ||
                a.fits[r].ks != b.fits[r].ks) {
              return false;
            }
          }
          return true;
        });
  }

  t.print(std::cout,
          "Parallel layer speedup curves (acceptance: >= 4x at 8 threads "
          "for the all-sources temporal sweep, given >= 8 cores; every row "
          "must be bit-identical to serial)");
}

}  // namespace
}  // namespace structnet

int main(int argc, char** argv) {
  structnet::speedup_tables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  structnet::obs::emit_json(std::cout);
  return 0;
}
