// Experiment E10 (Sec. IV-B): dynamic labeling convergence — Bellman-
// Ford relaxation rounds (the distributed distance-vector schedule) and
// PageRank / HITS iterations-to-tolerance, across topologies. The
// paper's point: dynamic labels converge slowly compared to the
// static/one-shot labels of E8.
#include <benchmark/benchmark.h>

#include <iostream>

#include "algo/shortest_paths.hpp"
#include "algo/traversal.hpp"
#include "centrality/link_analysis.hpp"
#include "core/generators.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace structnet {
namespace {

void bellman_ford_table() {
  Table t({"topology", "n", "bf_rounds", "eccentricity", "rounds/ecc"});
  Rng rng(1);
  auto row = [&](const std::string& name, const Graph& g) {
    std::vector<double> w(g.edge_count());
    for (auto& x : w) x = rng.uniform(0.5, 1.5);
    const auto bf = bellman_ford(g, w, 0);
    const auto ecc = eccentricity(g, 0);
    t.add_row({name, Table::num(std::uint64_t(g.vertex_count())),
               Table::num(std::uint64_t(bf.rounds)),
               Table::num(std::uint64_t(ecc)),
               Table::num(double(bf.rounds) / std::max<std::uint32_t>(ecc, 1),
                          2)});
  };
  row("path(256)", path_graph(256));
  row("cycle(256)", cycle_graph(256));
  row("grid(16x16)", grid_graph(16, 16));
  row("hypercube(8)", binary_hypercube(8));
  row("barabasi-albert(256,3)", barabasi_albert(256, 3, rng));
  Graph er = erdos_renyi(256, 0.03, rng);
  for (VertexId v = 0; v + 1 < 256; ++v) er.add_edge_unique(v, v + 1);
  row("erdos-renyi(256)+path", er);
  t.print(std::cout,
          "E10: Bellman-Ford convergence rounds track the network "
          "eccentricity — slow on paths, fast on expanders/hypercubes");
}

void pagerank_hits_table() {
  Table t({"topology", "pr_iterations", "hits_iterations"});
  Rng rng(2);
  auto digraph_of = [&](const Graph& g) {
    Digraph d(g.vertex_count());
    for (const auto& e : g.edges()) {
      d.add_arc(e.u, e.v);
      d.add_arc(e.v, e.u);
    }
    return d;
  };
  auto row = [&](const std::string& name, const Graph& g) {
    const auto pr = pagerank(g);
    const auto h = hits(digraph_of(g));
    t.add_row({name, Table::num(std::uint64_t(pr.iterations)),
               Table::num(std::uint64_t(h.iterations))});
  };
  row("path(512)", path_graph(512));
  row("grid(23x23)", grid_graph(23, 23));
  row("barabasi-albert(512,3)", barabasi_albert(512, 3, rng));
  row("watts-strogatz(512,4,0.1)", watts_strogatz(512, 4, 0.1, rng));
  t.print(std::cout,
          "E10: PageRank / HITS iterations to 1e-10 tolerance "
          "(dynamic labels re-labeled a non-constant number of times)");
}

void damping_sweep() {
  Table t({"damping", "pr_iterations"});
  Rng rng(3);
  const Graph g = barabasi_albert(1024, 3, rng);
  for (double d : {0.5, 0.7, 0.85, 0.95, 0.99}) {
    const auto pr = pagerank(g, d, 1e-10, 10000);
    t.add_row({Table::num(d, 2), Table::num(std::uint64_t(pr.iterations))});
  }
  t.print(std::cout,
          "E10: convergence cost grows with damping ~ 1/log(1/d)");
}

void BM_BellmanFord(benchmark::State& state) {
  Rng rng(4);
  const auto n = static_cast<std::size_t>(state.range(0));
  Graph g = erdos_renyi(n, 6.0 / double(n), rng);
  for (VertexId v = 0; v + 1 < n; ++v) g.add_edge_unique(v, v + 1);
  std::vector<double> w(g.edge_count(), 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bellman_ford(g, w, 0));
  }
}
BENCHMARK(BM_BellmanFord)->Range(128, 1024);

void BM_PageRank(benchmark::State& state) {
  Rng rng(5);
  const Graph g = barabasi_albert(static_cast<std::size_t>(state.range(0)), 3,
                                  rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pagerank(g));
  }
}
BENCHMARK(BM_PageRank)->Range(256, 4096);

void BM_Hits(benchmark::State& state) {
  Rng rng(6);
  const auto n = static_cast<std::size_t>(state.range(0));
  Digraph d(n);
  for (std::size_t i = 0; i < 4 * n; ++i) {
    d.add_arc_unique(static_cast<VertexId>(rng.index(n)),
                     static_cast<VertexId>(rng.index(n)));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(hits(d));
  }
}
BENCHMARK(BM_Hits)->Range(256, 4096);

}  // namespace
}  // namespace structnet

int main(int argc, char** argv) {
  structnet::bellman_ford_table();
  structnet::pagerank_hits_table();
  structnet::damping_sweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
