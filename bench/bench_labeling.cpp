// Experiment E8 (Fig. 8, Sec. IV-A): static labeling — marking CDS +
// trimming, 3-color distributed MIS, neighbor-designated DS. Replays the
// reconstructed Fig. 8 example, then sweeps UDG sizes for set sizes and
// round counts.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <iostream>

#include "algo/components.hpp"
#include "core/generators.hpp"
#include "labeling/fig8_example.hpp"
#include "labeling/static_labels.hpp"
#include "sim/local_protocols.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace structnet {
namespace {

std::string set_names(const std::vector<bool>& s) {
  std::string out;
  for (std::size_t v = 0; v < s.size(); ++v) {
    if (s[v]) out += static_cast<char>('A' + v);
  }
  return out;
}

void fig8_table() {
  const Graph g = fig8::build();
  const auto prio = id_priorities(6);
  const auto black = marking_process(g);
  const auto trimmed = trim_cds(g, black, prio);
  const auto mis = distributed_mis(g, prio);
  const auto ds = neighbor_designated_ds(g, prio);
  Table t({"labeling", "paper_says", "computed"});
  t.add_row({"marking (CDS)", "BCDEF", set_names(black)});
  t.add_row({"trimmed CDS", "BCD", set_names(trimmed)});
  t.add_row({"3-color MIS", "ABE", set_names(mis.in_mis)});
  t.add_row({"MIS rounds", "2", Table::num(std::uint64_t(mis.rounds))});
  t.add_row({"neighbor-designated DS", "ABC", set_names(ds)});
  t.print(std::cout, "E8: Fig. 8 replay (exact match required)");
}

void udg_sweep() {
  Table t({"n", "cds_marked", "cds_trimmed", "mis_size", "mis_rounds",
           "nd_ds_size", "all_valid"});
  Rng rng(1);
  for (std::size_t n : {50, 100, 200, 400}) {
    RunningStats marked, trimmed_s, mis_s, rounds, nd;
    bool valid = true;
    int done = 0;
    while (done < 8) {
      std::vector<Point2D> pts;
      Graph g = random_geometric(n, std::sqrt(10.0 / double(n)), rng, &pts);
      if (!is_connected(g)) continue;
      ++done;
      std::vector<double> prio(n);
      for (auto& p : prio) p = rng.uniform01();
      const auto black = marking_process(g);
      const auto trimmed = trim_cds(g, black, prio);
      const auto mis = distributed_mis(g, prio);
      const auto ds = neighbor_designated_ds(g, prio);
      valid &= is_connected_dominating_set(g, black);
      valid &= is_connected_dominating_set(g, trimmed);
      valid &= is_maximal_independent_set(g, mis.in_mis);
      valid &= is_dominating_set(g, ds);
      auto count = [](const std::vector<bool>& s) {
        return static_cast<double>(std::count(s.begin(), s.end(), true));
      };
      marked.add(count(black));
      trimmed_s.add(count(trimmed));
      mis_s.add(count(mis.in_mis));
      rounds.add(static_cast<double>(mis.rounds));
      nd.add(count(ds));
    }
    t.add_row({Table::num(std::uint64_t(n)), Table::num(marked.mean(), 1),
               Table::num(trimmed_s.mean(), 1), Table::num(mis_s.mean(), 1),
               Table::num(rounds.mean(), 1), Table::num(nd.mean(), 1),
               valid ? "yes" : "NO"});
  }
  t.print(std::cout,
          "E8: connected UDGs at constant expected degree — trimming "
          "shrinks the marked CDS sharply; MIS rounds grow ~log n");
}

void mis_cds_ratio_table() {
  // Sec. IV-A footnote: in a UDG no MIS exceeds 5x the minimum CDS; we
  // report MIS size / trimmed-CDS size as an observable proxy.
  Table t({"n", "avg_mis/avg_trimmed_cds"});
  Rng rng(2);
  for (std::size_t n : {60, 120, 240}) {
    RunningStats ratio;
    int done = 0;
    while (done < 8) {
      std::vector<Point2D> pts;
      Graph g = random_geometric(n, std::sqrt(10.0 / double(n)), rng, &pts);
      if (!is_connected(g)) continue;
      ++done;
      std::vector<double> prio(n);
      for (auto& p : prio) p = rng.uniform01();
      const auto mis = distributed_mis(g, prio);
      const auto cds = trim_cds(g, marking_process(g), prio);
      const auto count = [](const std::vector<bool>& s) {
        return static_cast<double>(std::count(s.begin(), s.end(), true));
      };
      if (count(cds) > 0) ratio.add(count(mis.in_mis) / count(cds));
    }
    t.add_row({Table::num(std::uint64_t(n)), Table::num(ratio.mean(), 2)});
  }
  t.print(std::cout,
          "E8: MIS vs trimmed CDS size ratio (bounded; cf. the 5x bound "
          "against the *minimum* CDS)");
}

void protocol_cost_table() {
  // The message-passing cost of the labeling protocols when executed as
  // real round programs on the LOCAL-model engine.
  Table t({"n", "marking_rounds", "marking_msgs", "mis_rounds", "mis_msgs",
           "nomination_rounds", "nomination_msgs"});
  Rng rng(5);
  for (std::size_t n : {64, 128, 256, 512}) {
    const Graph g = erdos_renyi(n, 8.0 / double(n), rng);
    std::vector<double> prio(n);
    for (auto& p : prio) p = rng.uniform01();
    const auto mark = distributed_marking(g);
    const auto mis = distributed_mis_protocol(g, prio);
    const auto nom = neighbor_designated_protocol(g, prio);
    t.add_row({Table::num(std::uint64_t(n)),
               Table::num(std::uint64_t(mark.rounds)),
               Table::num(std::uint64_t(mark.messages)),
               Table::num(std::uint64_t(mis.rounds)),
               Table::num(std::uint64_t(mis.messages)),
               Table::num(std::uint64_t(nom.rounds)),
               Table::num(std::uint64_t(nom.messages))});
  }
  t.print(std::cout,
          "E8: protocol cost on the round engine — marking and "
          "nomination are constant-round (localized); MIS rounds grow "
          "slowly (distributed)");
}

void BM_Marking(benchmark::State& state) {
  Rng rng(3);
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<Point2D> pts;
  const Graph g = random_geometric(n, std::sqrt(10.0 / double(n)), rng, &pts);
  for (auto _ : state) {
    benchmark::DoNotOptimize(marking_process(g));
  }
}
BENCHMARK(BM_Marking)->Range(64, 1024);

void BM_DistributedMis(benchmark::State& state) {
  Rng rng(4);
  const auto n = static_cast<std::size_t>(state.range(0));
  const Graph g = erdos_renyi(n, 8.0 / double(n), rng);
  std::vector<double> prio(n);
  for (auto& p : prio) p = rng.uniform01();
  for (auto _ : state) {
    benchmark::DoNotOptimize(distributed_mis(g, prio));
  }
}
BENCHMARK(BM_DistributedMis)->Range(64, 1024);

}  // namespace
}  // namespace structnet

int main(int argc, char** argv) {
  structnet::fig8_table();
  structnet::udg_sweep();
  structnet::mis_cds_ratio_table();
  structnet::protocol_cost_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
