// Streaming engine benchmark: events/sec for incremental structure
// maintenance (core/NSF tracker + dynamic MIS as stream observers)
// versus naively recomputing both structures from scratch after every
// event, on scale-free churn workloads of N = 10k / 100k nodes. The
// acceptance bar is a >= 10x advantage for the incremental path at 100k.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <iostream>
#include <unordered_set>
#include <vector>

#include "bench_util.hpp"
#include "obs/metrics.hpp"
#include "core/generators.hpp"
#include "labeling/dynamic_mis.hpp"
#include "layering/nsf.hpp"
#include "mobility/contact_trace.hpp"
#include "mobility/edge_markovian.hpp"
#include "mobility/mobility_models.hpp"
#include "parallel/parallel.hpp"
#include "stream/engine.hpp"
#include "stream/observers.hpp"
#include "stream/replay.hpp"
#include "util/table.hpp"

namespace structnet {
namespace {

std::uint64_t pair_key(VertexId u, VertexId v) {
  if (u > v) std::swap(u, v);
  return (static_cast<std::uint64_t>(u) << 32) | v;
}

/// Socially-plausible substrate: power-law configuration model (diverse
/// core structure, like the Gnutella snapshot the paper's NSF section
/// analyses).
Graph churn_substrate(std::size_t n, Rng& rng) {
  const auto seq = power_law_degree_sequence(n, 2.5, 2, 64, rng);
  return configuration_model(seq, rng);
}

/// A 50/50 insert/delete mix over the substrate's edge set: deletions
/// pick a live edge, insertions a fresh random pair.
std::vector<Event> churn_events(const Graph& g, std::size_t count, Rng& rng) {
  std::vector<std::pair<VertexId, VertexId>> edges;
  std::unordered_set<std::uint64_t> present;
  for (const Graph::Edge& e : g.edges()) {
    edges.emplace_back(e.u, e.v);
    present.insert(pair_key(e.u, e.v));
  }
  const auto n = g.vertex_count();
  std::vector<Event> events;
  events.reserve(count);
  while (events.size() < count) {
    if (rng.bernoulli(0.5) && !edges.empty()) {
      const std::size_t i = rng.index(edges.size());
      const auto [u, v] = edges[i];
      edges[i] = edges.back();
      edges.pop_back();
      present.erase(pair_key(u, v));
      events.push_back(Event::edge_delete(u, v));
    } else {
      const auto u = static_cast<VertexId>(rng.index(n));
      const auto v = static_cast<VertexId>(rng.index(n));
      if (u == v || present.contains(pair_key(u, v))) continue;
      present.insert(pair_key(u, v));
      edges.emplace_back(u, v);
      events.push_back(Event::edge_insert(u, v));
    }
  }
  return events;
}

void incremental_vs_naive_table() {
  Table t({"n", "events", "incr_ns_per_event", "naive_ns_per_event",
           "speedup", "incr_events_per_sec"});
  for (const std::size_t n : {std::size_t{10'000}, std::size_t{100'000}}) {
    Rng rng(11);
    const Graph g = churn_substrate(n, rng);
    const std::size_t incr_events = 20'000;
    const auto events = churn_events(g, incr_events, rng);

    // Incremental path: core + MIS observers ride the stream.
    StreamEngine engine{DynamicGraph(g)};
    CoreObserver cores;
    MisObserver mis(42);
    engine.attach(&cores);
    engine.attach(&mis);
    const double incr_ns = time_ns_per_op(1, [&](std::size_t) {
                             replay(engine, events, 64);
                           }) /
                           static_cast<double>(events.size());

    // Naive path: apply the event, then recompute both structures from
    // scratch. A handful of events is enough to price one recompute.
    StreamEngine naive{DynamicGraph(g)};
    const std::size_t naive_events = 8;
    std::vector<double> priority(naive.graph().vertex_count());
    for (auto& p : priority) p = rng.uniform01();
    const double naive_ns = time_ns_per_op(naive_events, [&](std::size_t i) {
      naive.apply(events[i]);
      const Graph now = naive.graph().materialize();
      benchmark::DoNotOptimize(core_numbers(now));
      benchmark::DoNotOptimize(DynamicMis(now, priority));
    });

    const double speedup = naive_ns / incr_ns;
    t.add_row({Table::num(std::uint64_t(n)),
               Table::num(std::uint64_t(events.size())),
               Table::num(incr_ns, 1), Table::num(naive_ns, 1),
               Table::num(speedup, 1), Table::num(1e9 / incr_ns, 0)});
    BenchJson("stream_incremental")
        .field("n", std::uint64_t(n))
        .field("ns_per_op", incr_ns)
        .field("speedup_vs_naive", speedup)
        .threads(1)
        .emit();
    bench_json_line("stream_naive_recompute", n, naive_ns);

    // Full-recompute sweep across all observers rides the parallel
    // layer; record the thread-count curve.
    for (const std::size_t threads : {std::size_t{1}, hardware_threads()}) {
      BenchJson("stream_recompute_all")
          .field("n", std::uint64_t(n))
          .threads(threads)
          .field("ns_per_op", time_ns_per_op(3, [&](std::size_t) {
                   benchmark::DoNotOptimize(engine.recompute_all(threads));
                 }))
          .emit();
    }
  }
  t.print(std::cout,
          "Streaming engine: incremental core+MIS maintenance vs full "
          "recompute per event (acceptance: >= 10x at n = 100k)");
}

void replay_throughput_table() {
  // Edge-Markovian snapshot diffs and contact streams through the full
  // observer stack, including the lazily-trimmed temporal view.
  Table t({"source", "n", "events", "accepted", "events_per_sec"});
  Rng rng(7);
  EdgeMarkovianParams params;
  params.nodes = 512;
  params.horizon = 96;
  const TemporalGraph eg = edge_markovian_graph(params, rng);

  {
    const auto events = snapshot_edge_events(eg);
    StreamEngine engine{DynamicGraph(params.nodes)};
    CoreObserver cores;
    MisObserver mis(3);
    engine.attach(&cores);
    engine.attach(&mis);
    ReplayStats stats;
    const double ns = time_ns_per_op(1, [&](std::size_t) {
                        stats = replay(engine, events, 128);
                      }) /
                      static_cast<double>(events.size());
    t.add_row({"edge_markovian diffs", Table::num(std::uint64_t(params.nodes)),
               Table::num(std::uint64_t(stats.events)),
               Table::num(std::uint64_t(stats.accepted)),
               Table::num(1e9 / ns, 0)});
    bench_json_line("stream_replay_markovian", params.nodes, ns);
  }
  {
    RandomWaypointParams mob;
    mob.nodes = 256;
    mob.steps = 128;
    const auto trajectory = random_waypoint(mob, rng);
    const auto events = trajectory_events(trajectory, 0.05);
    StreamEngine engine{DynamicGraph(mob.nodes)};
    TemporalViewObserver view(mob.nodes, static_cast<TimeUnit>(mob.steps));
    engine.attach(&view);
    ReplayStats stats;
    const double ns = time_ns_per_op(1, [&](std::size_t) {
                        stats = replay(engine, events, 128);
                      }) /
                      static_cast<double>(std::max<std::size_t>(
                          events.size(), 1));
    t.add_row({"waypoint contacts", Table::num(std::uint64_t(mob.nodes)),
               Table::num(std::uint64_t(stats.events)),
               Table::num(std::uint64_t(stats.accepted)),
               Table::num(1e9 / ns, 0)});
    bench_json_line("stream_replay_contacts", mob.nodes, ns);
  }
  t.print(std::cout, "Trace replay throughput through the observer stack");
}

void BM_StreamApplyNoObservers(benchmark::State& state) {
  Rng rng(5);
  const auto n = static_cast<std::size_t>(state.range(0));
  const Graph g = churn_substrate(n, rng);
  StreamEngine engine{DynamicGraph(g)};
  const auto events = churn_events(g, 1 << 14, rng);
  std::size_t i = 0;
  for (auto _ : state) {
    engine.apply(events[i]);
    i = (i + 1) % events.size();
  }
}
BENCHMARK(BM_StreamApplyNoObservers)->Range(1 << 10, 1 << 14);

void BM_StreamApplyCoreMis(benchmark::State& state) {
  Rng rng(6);
  const auto n = static_cast<std::size_t>(state.range(0));
  const Graph g = churn_substrate(n, rng);
  StreamEngine engine{DynamicGraph(g)};
  CoreObserver cores;
  MisObserver mis(9);
  engine.attach(&cores);
  engine.attach(&mis);
  const auto events = churn_events(g, 1 << 14, rng);
  std::size_t i = 0;
  for (auto _ : state) {
    engine.apply(events[i]);
    i = (i + 1) % events.size();
  }
}
BENCHMARK(BM_StreamApplyCoreMis)->Range(1 << 10, 1 << 14);

}  // namespace
}  // namespace structnet

int main(int argc, char** argv) {
  structnet::incremental_vs_naive_table();
  structnet::replay_throughput_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  structnet::obs::emit_json(std::cout);
  return 0;
}
