// Experiment E3c (Sec. III-A, dynamic trimming + [13]): forwarding-set
// routing under time-decaying utility with exponential(-like) inter-
// contact times. Compares direct, epidemic, fixed rate-greedy forwarding
// sets, and the time-varying utility-optimal sets; also shows the
// forwarding set shrinking over time (the paper's headline property).
#include <benchmark/benchmark.h>

#include <iostream>

#include "mobility/social_contacts.hpp"
#include "sim/dtn_routing.hpp"
#include "sim/multi_message.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace structnet {
namespace {

struct Workload {
  TemporalGraph trace;
  std::vector<double> meet;
  std::size_t people;
  TimeUnit horizon;
};

Workload make_workload(Rng& rng) {
  SocialTraceParams p;
  p.people = 30;
  p.horizon = 300;
  p.base_rate = 0.12;
  p.decay = 0.3;
  const auto profiles = random_profiles(p.people, p.radices, rng);
  Workload w{social_contact_trace(p, profiles, rng), {}, p.people, p.horizon};
  w.meet = estimate_meet_probabilities(w.trace);
  return w;
}

void strategy_comparison() {
  Rng rng(1);
  const double u0 = 100.0, decay = 0.8;
  Table t({"strategy", "delivery_ratio", "avg_delay", "avg_utility",
           "avg_copies", "avg_transmissions"});

  struct Acc {
    RunningStats delay, utility, copies, tx;
    std::size_t delivered = 0, total = 0;
  };
  std::vector<std::pair<std::string, Acc>> rows{
      {"direct", {}}, {"epidemic", {}}, {"fixed-set(rate-greedy)", {}},
      {"time-varying(utility DP)", {}}, {"copy-varying(L=6)", {}}};

  for (int workload = 0; workload < 4; ++workload) {
    const auto w = make_workload(rng);
    Rng pick(workload + 100);
    for (int trial = 0; trial < 40; ++trial) {
      const auto s = static_cast<VertexId>(pick.index(w.people));
      const auto d = static_cast<VertexId>(pick.index(w.people));
      if (s == d) continue;
      const UtilityForwarding uf(w.meet, w.people, d, u0, decay, w.horizon);
      // Fixed set: forward iff contact has a higher direct meeting rate
      // with the destination (time-independent).
      const auto n = w.people;
      const auto& meet = w.meet;
      Strategy fixed = forwarding_set_strategy(
          [&meet, n, d](VertexId holder, VertexId contact, TimeUnit) {
            return meet[contact * n + d] > meet[holder * n + d];
          });
      // Copy-varying metric: negative meeting rate with the destination
      // (lower = better relay).
      std::vector<double> rate_metric(w.people);
      for (VertexId x = 0; x < w.people; ++x) {
        rate_metric[x] = -w.meet[x * w.people + d];
      }
      const Strategy strategies[5] = {
          direct_strategy(), epidemic_strategy(), fixed, uf.strategy(),
          copy_varying_strategy(rate_metric, 0.02)};
      for (int i = 0; i < 5; ++i) {
        const std::size_t copies = i == 1 ? 0 : (i == 4 ? 6 : 1);
        const auto r = simulate_routing(w.trace, s, d, 0, strategies[i],
                                        copies);
        auto& acc = rows[i].second;
        ++acc.total;
        if (r.delivered) {
          ++acc.delivered;
          acc.delay.add(static_cast<double>(r.delivery_time));
          acc.utility.add(uf.utility_at(r.delivery_time));
          acc.copies.add(static_cast<double>(r.copies));
          acc.tx.add(static_cast<double>(r.transmissions));
        }
      }
    }
  }
  for (auto& [name, acc] : rows) {
    t.add_row({name,
               Table::num(double(acc.delivered) / double(acc.total), 3),
               Table::num(acc.delay.mean(), 1),
               Table::num(acc.utility.mean(), 1),
               Table::num(acc.copies.mean(), 1),
               Table::num(acc.tx.mean(), 1)});
  }
  t.print(std::cout,
          "E3c: routing strategies under linear utility decay "
          "(epidemic fastest but most copies; time-varying sets beat the "
          "fixed set on utility at single-copy cost)");
}

void shrinking_set_table() {
  // Gradual shrinkage needs multi-hop relay value: two-hop relays are
  // worth waiting for early, but stop amortizing as the deadline nears
  // and fall out of the holders' forwarding sets one by one. Population:
  // destination 0; strong relays 1..4 (good direct rates); two-hop
  // relays 5..10 (negligible direct, linked to strong relays at varied
  // rates); holders 11..19 (weak direct rates).
  const std::size_t n = 20;
  const VertexId dest = 0;
  std::vector<double> meet(n * n, 0.0);
  auto set_rate = [&](VertexId a, VertexId b, double r) {
    meet[a * n + b] = meet[b * n + a] = r;
  };
  for (VertexId s = 1; s <= 4; ++s) set_rate(s, dest, 0.2 + 0.02 * s);
  const double bridges[6] = {0.018, 0.024, 0.032, 0.05, 0.08, 0.12};
  for (VertexId c = 5; c <= 10; ++c) {
    set_rate(c, static_cast<VertexId>(1 + (c % 4)), bridges[c - 5]);
  }
  for (VertexId h = 11; h < n; ++h) {
    set_rate(h, dest, 0.015);  // holders reach the destination directly only
  }
  const TimeUnit horizon = 140;  // utility expires at t = 125
  const UtilityForwarding uf(meet, n, dest, 100.0, 0.8, horizon);
  Table t({"time", "avg_forwarding_set_size(holders)"});
  for (TimeUnit t0 : {0u, 60u, 90u, 105u, 112u, 116u, 119u, 121u, 123u}) {
    RunningStats size;
    for (VertexId u = 11; u < n; ++u) {
      size.add(static_cast<double>(uf.forwarding_set(u, t0).size()));
    }
    t.add_row({Table::num(std::uint64_t(t0)), Table::num(size.mean(), 2)});
  }
  t.print(std::cout,
          "E3c: forwarding sets shrink over time ([13]'s time-varying "
          "optimal sets; two-hop relays drop out as the deadline nears)");
}

void buffer_contention_table() {
  // Multi-message workload: replication wins with roomy buffers and
  // chokes on tight ones; single-copy strategies barely notice.
  Rng rng(11);
  SocialTraceParams p;
  p.people = 30;
  p.horizon = 80;  // short horizon: dropped transfers cost real delivery
  p.base_rate = 0.08;
  p.decay = 0.35;
  const auto profiles = random_profiles(p.people, p.radices, rng);
  const auto trace = social_contact_trace(p, profiles, rng);
  std::vector<MessageSpec> msgs;
  Rng pick(12);
  while (msgs.size() < 40) {
    const auto s = static_cast<VertexId>(pick.index(p.people));
    const auto d = static_cast<VertexId>(pick.index(p.people));
    if (s == d) continue;
    msgs.push_back({s, d, static_cast<TimeUnit>(pick.index(30))});
  }
  Table t({"buffer", "epidemic_delivery", "epidemic_delay", "epidemic_drops",
           "spray8_delivery", "direct_delivery"});
  for (std::size_t buffer : {0, 16, 4, 2, 1}) {
    const auto epi = simulate_workload(trace, msgs, epidemic_strategy(), 0,
                                       buffer);
    const auto spray = simulate_workload(trace, msgs,
                                         spray_and_wait_strategy(), 8, buffer);
    const auto dir =
        simulate_workload(trace, msgs, direct_strategy(), 1, buffer);
    t.add_row({buffer == 0 ? "unlimited" : Table::num(std::uint64_t(buffer)),
               Table::num(epi.delivery_ratio(), 3),
               Table::num(epi.average_delay, 1),
               Table::num(std::uint64_t(epi.drops)),
               Table::num(spray.delivery_ratio(), 3),
               Table::num(dir.delivery_ratio(), 3)});
  }
  t.print(std::cout,
          "E3c: buffer contention (40 concurrent messages) — replication "
          "chokes on tight buffers; frugal strategies barely notice");
}

void BM_UtilityDp(benchmark::State& state) {
  Rng rng(3);
  const auto w = make_workload(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        UtilityForwarding(w.meet, w.people, 0, 100.0, 0.8, w.horizon));
  }
}
BENCHMARK(BM_UtilityDp);

void BM_SimulateEpidemic(benchmark::State& state) {
  Rng rng(4);
  const auto w = make_workload(rng);
  VertexId s = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        simulate_routing(w.trace, s, 0, 0, epidemic_strategy(), 0));
    s = static_cast<VertexId>(1 + (s % (w.people - 1)));
  }
}
BENCHMARK(BM_SimulateEpidemic);

}  // namespace
}  // namespace structnet

int main(int argc, char** argv) {
  structnet::strategy_comparison();
  structnet::shrinking_set_table();
  structnet::buffer_contention_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
