// Experiment E6 (Fig. 6, Sec. III-C): remapping the routing domain from
// the mobile contact space (M-space) to the static feature space
// (F-space, a generalized hypercube). Synthetic feature-driven traces
// stand in for INFOCOM'06 / MIT Reality Mining (see DESIGN.md).
#include <benchmark/benchmark.h>

#include <iostream>
#include <set>

#include "mobility/social_contacts.hpp"
#include "remapping/feature_space.hpp"
#include "sim/dtn_routing.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace structnet {
namespace {

void frequency_law_table() {
  // The uncovered structure itself: contact frequency vs feature
  // distance (the [21] observation our generator reproduces).
  Rng rng(1);
  SocialTraceParams p;
  p.people = 60;
  p.horizon = 1500;
  p.base_rate = 0.2;
  p.decay = 0.35;
  const auto profiles = random_profiles(p.people, p.radices, rng);
  const auto trace = social_contact_trace(p, profiles, rng);
  const auto freq = contact_frequency_by_distance(trace, profiles);
  Table t({"feature_distance", "contacts_per_unit", "ratio_to_prev"});
  for (std::size_t d = 0; d < freq.size(); ++d) {
    t.add_row({Table::num(std::uint64_t(d)), Table::num(freq[d], 4),
               d == 0 ? "-" : Table::num(freq[d] / freq[d - 1], 3)});
  }
  t.print(std::cout,
          "E6: contact frequency decays with feature distance "
          "(ratio column ~ decay parameter 0.35)");
}

void routing_comparison() {
  Table t({"strategy", "delivery_ratio", "avg_delay", "avg_copies",
           "avg_transmissions"});
  Rng rng(2);
  struct Acc {
    RunningStats delay, copies, tx;
    std::size_t delivered = 0, total = 0;
  };
  std::vector<std::pair<std::string, Acc>> rows{
      {"direct", {}}, {"epidemic", {}}, {"spray&wait(L=6)", {}},
      {"F-space greedy", {}}};
  for (int workload = 0; workload < 4; ++workload) {
    SocialTraceParams p;
    p.people = 50;
    p.horizon = 500;
    p.base_rate = 0.15;
    p.decay = 0.25;
    const auto profiles = random_profiles(p.people, p.radices, rng);
    const auto trace = social_contact_trace(p, profiles, rng);
    Rng pick(workload + 10);
    for (int trial = 0; trial < 50; ++trial) {
      const auto s = static_cast<VertexId>(pick.index(p.people));
      const auto d = static_cast<VertexId>(pick.index(p.people));
      if (s == d) continue;
      std::vector<double> metric(p.people);
      for (VertexId v = 0; v < p.people; ++v) {
        metric[v] =
            static_cast<double>(feature_distance(profiles[v], profiles[d]));
      }
      const Strategy strategies[4] = {direct_strategy(), epidemic_strategy(),
                                      spray_and_wait_strategy(),
                                      greedy_metric_strategy(metric)};
      const std::size_t copies[4] = {1, 0, 6, 1};
      for (int i = 0; i < 4; ++i) {
        const auto r =
            simulate_routing(trace, s, d, 0, strategies[i], copies[i]);
        auto& acc = rows[i].second;
        ++acc.total;
        if (r.delivered) {
          ++acc.delivered;
          acc.delay.add(static_cast<double>(r.delivery_time));
          acc.copies.add(static_cast<double>(r.copies));
          acc.tx.add(static_cast<double>(r.transmissions));
        }
      }
    }
  }
  for (auto& [name, acc] : rows) {
    t.add_row({name, Table::num(double(acc.delivered) / double(acc.total), 3),
               Table::num(acc.delay.mean(), 1),
               Table::num(acc.copies.mean(), 1),
               Table::num(acc.tx.mean(), 1)});
  }
  t.print(std::cout,
          "E6: M-space routing guided by F-space (single-copy F-space "
          "greedy approaches epidemic delay at a fraction of the copies)");
}

void multipath_table() {
  // Fig. 6's other benefit: node-disjoint multipath in the GH.
  const FeatureSpace fs({2, 2, 3});
  Table t({"src_profile", "dst_profile", "distance", "disjoint_paths",
           "all_disjoint"});
  const std::vector<std::pair<SocialProfile, SocialProfile>> pairs{
      {{0, 0, 0}, {1, 1, 2}},
      {{0, 0, 0}, {1, 0, 1}},
      {{0, 1, 2}, {1, 0, 0}},
  };
  for (const auto& [a, b] : pairs) {
    const auto paths = fs.disjoint_paths(a, b);
    bool ok = true;
    std::set<std::size_t> seen;
    for (const auto& path : paths) {
      for (std::size_t i = 1; i + 1 < path.size(); ++i) {
        ok &= seen.insert(fs.node_of(path[i])).second;
      }
    }
    auto fmt = [](const SocialProfile& p) {
      std::string s;
      for (auto d : p) s += std::to_string(d);
      return s;
    };
    t.add_row({fmt(a), fmt(b),
               Table::num(std::uint64_t(fs.distance(a, b))),
               Table::num(std::uint64_t(paths.size())), ok ? "yes" : "NO"});
  }
  t.print(std::cout,
          "E6: node-disjoint multipath in the Fig. 6 GH(2,2,3) cube");
}

void decay_sensitivity() {
  // How strongly must social structure shape contacts before F-space
  // routing pays off? Sweep the decay (1.0 = no structure).
  Table t({"decay", "fspace_delay", "direct_delay", "speedup"});
  Rng rng(3);
  for (double decay : {1.0, 0.6, 0.35, 0.2}) {
    SocialTraceParams p;
    p.people = 50;
    p.horizon = 600;
    p.base_rate = 0.12;
    p.decay = decay;
    const auto profiles = random_profiles(p.people, p.radices, rng);
    const auto trace = social_contact_trace(p, profiles, rng);
    RunningStats fd, dd;
    Rng pick(11);
    for (int trial = 0; trial < 80; ++trial) {
      const auto s = static_cast<VertexId>(pick.index(p.people));
      const auto d = static_cast<VertexId>(pick.index(p.people));
      if (s == d) continue;
      std::vector<double> metric(p.people);
      for (VertexId v = 0; v < p.people; ++v) {
        metric[v] =
            static_cast<double>(feature_distance(profiles[v], profiles[d]));
      }
      const auto rf =
          simulate_routing(trace, s, d, 0, greedy_metric_strategy(metric));
      const auto rd = simulate_routing(trace, s, d, 0, direct_strategy());
      if (rf.delivered && rd.delivered) {
        fd.add(static_cast<double>(rf.delivery_time));
        dd.add(static_cast<double>(rd.delivery_time));
      }
    }
    t.add_row({Table::num(decay, 2), Table::num(fd.mean(), 1),
               Table::num(dd.mean(), 1),
               Table::num(dd.mean() / std::max(fd.mean(), 1e-9), 2)});
  }
  t.print(std::cout,
          "E6: ablation — F-space routing only wins when contacts are "
          "socially structured (small decay); at decay=1.0 there is no "
          "structure to exploit");
}

void BM_FspaceGreedyRouting(benchmark::State& state) {
  Rng rng(4);
  SocialTraceParams p;
  p.people = 50;
  p.horizon = 500;
  const auto profiles = random_profiles(p.people, p.radices, rng);
  const auto trace = social_contact_trace(p, profiles, rng);
  std::vector<double> metric(p.people);
  for (VertexId v = 0; v < p.people; ++v) {
    metric[v] = static_cast<double>(feature_distance(profiles[v], profiles[0]));
  }
  VertexId s = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        simulate_routing(trace, s, 0, 0, greedy_metric_strategy(metric)));
    s = static_cast<VertexId>(1 + (s % (p.people - 1)));
  }
}
BENCHMARK(BM_FspaceGreedyRouting);

}  // namespace
}  // namespace structnet

int main(int argc, char** argv) {
  structnet::frequency_law_table();
  structnet::routing_comparison();
  structnet::multipath_table();
  structnet::decay_sensitivity();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
