// Experiment E4 (Fig. 4, Sec. III-B/IV-B): link reversal. Replays the
// reconstructed Fig. 4 cascade exactly, then compares full vs partial vs
// binary-label reversal work on chains, grids, and random graphs,
// exhibiting the O(n^2) worst-case growth the paper quotes.
#include <benchmark/benchmark.h>

#include <iostream>

#include "algo/maxflow.hpp"
#include "core/generators.hpp"
#include "layering/fig4_example.hpp"
#include "layering/link_reversal.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace structnet {
namespace {

void fig4_table() {
  const Graph g = fig4::broken_graph();
  auto heights = fig4::initial_heights();
  Orientation o = orientation_from_heights(g, heights);
  const auto stats = full_reversal_by_heights(g, heights, fig4::D, o);
  Table t({"fact", "value"});
  t.add_row({"rounds (snapshots b-e)", Table::num(std::uint64_t(stats.rounds))});
  t.add_row({"total node reversals", Table::num(std::uint64_t(stats.node_reversals))});
  t.add_row({"reversals of A (multiple!)",
             Table::num(std::uint64_t(stats.reversals_of[fig4::A]))});
  t.add_row({"destination-oriented after",
             is_destination_oriented_dag(g, o, fig4::D) ? "yes" : "NO"});
  t.print(std::cout, "E4: Fig. 4 full link reversal replay (A,B,C,D=0..3)");
}

struct Work {
  std::size_t full_nodes = 0, full_links = 0;
  std::size_t partial_nodes = 0, partial_links = 0;
  std::size_t full_rounds = 0, partial_rounds = 0;
};

Work measure(const Graph& g, const std::vector<double>& heights,
             VertexId dest) {
  Work w;
  const Orientation o = orientation_from_heights(g, heights);
  BinaryLinkReversal full(g, o, dest, ReversalMode::kFull);
  const auto fs = full.run();
  BinaryLinkReversal partial(g, o, dest, ReversalMode::kPartial);
  const auto ps = partial.run();
  w.full_nodes = fs.node_reversals;
  w.full_links = fs.link_reversals;
  w.full_rounds = fs.rounds;
  w.partial_nodes = ps.node_reversals;
  w.partial_links = ps.link_reversals;
  w.partial_rounds = ps.rounds;
  return w;
}

void worst_case_table() {
  // Chain with the destination at the far end of an adversarial
  // orientation: the classic O(n^2) workload.
  Table t({"n", "full_node_rev", "full/n^2", "partial_node_rev",
           "partial/n^2", "full_rounds"});
  for (std::size_t n : {8, 16, 32, 64, 128}) {
    const Graph g = path_graph(n);
    std::vector<double> heights(n);
    for (std::size_t v = 0; v < n; ++v) heights[v] = static_cast<double>(v);
    const auto w = measure(g, heights, static_cast<VertexId>(n - 1));
    const double n2 = static_cast<double>(n) * static_cast<double>(n);
    t.add_row({Table::num(std::uint64_t(n)),
               Table::num(std::uint64_t(w.full_nodes)),
               Table::num(w.full_nodes / n2, 4),
               Table::num(std::uint64_t(w.partial_nodes)),
               Table::num(w.partial_nodes / n2, 4),
               Table::num(std::uint64_t(w.full_rounds))});
  }
  t.print(std::cout,
          "E4: adversarial chain — flat ratio columns = Theta(n^2) total "
          "reversals (the paper's 'high cost in a slow convergence')");
}

void random_graph_table() {
  Table t({"graph", "n", "full_nodes", "partial_nodes", "full_links",
           "partial_links"});
  Rng rng(1);
  auto row = [&](const std::string& name, const Graph& g) {
    std::vector<double> heights(g.vertex_count());
    for (auto& h : heights) h = rng.uniform(0.0, 10.0);
    heights[0] = -1.0;
    const auto w = measure(g, heights, 0);
    t.add_row({name, Table::num(std::uint64_t(g.vertex_count())),
               Table::num(std::uint64_t(w.full_nodes)),
               Table::num(std::uint64_t(w.partial_nodes)),
               Table::num(std::uint64_t(w.full_links)),
               Table::num(std::uint64_t(w.partial_links))});
  };
  Graph er = erdos_renyi(64, 0.08, rng);
  for (VertexId v = 0; v + 1 < 64; ++v) er.add_edge_unique(v, v + 1);
  row("erdos-renyi+path", er);
  row("grid(8x8)", grid_graph(8, 8));
  row("cycle(64)", cycle_graph(64));
  Rng rng2(7);
  row("barabasi-albert(64,2)", barabasi_albert(64, 2, rng2));
  t.print(std::cout,
          "E4: full vs partial reversal across topologies (random "
          "broken orientations)");
}

void smoothed_analysis_table() {
  // Sec. IV-C suggests smoothed analysis [28] to reconcile worst-case
  // bounds with practical behavior: perturb the adversarial instance
  // with a little randomness and watch the Theta(n^2) reversal cost
  // collapse toward the average case.
  Table t({"perturbation sigma", "avg_node_reversals", "vs_worst_case"});
  Rng rng(13);
  const std::size_t n = 64;
  const std::size_t worst = [&] {
    const Graph g = path_graph(n);
    std::vector<double> h(n);
    for (std::size_t v = 0; v < n; ++v) h[v] = static_cast<double>(v);
    BinaryLinkReversal machine(g, orientation_from_heights(g, h),
                               static_cast<VertexId>(n - 1),
                               ReversalMode::kFull);
    return machine.run().node_reversals;
  }();
  for (double sigma : {0.0, 0.01, 0.03, 0.1, 0.3}) {
    double total = 0.0;
    const int trials = 8;
    for (int trial = 0; trial < trials; ++trial) {
      // Perturbation model: each non-adjacent pair gains an edge with
      // probability sigma (noise on the adversarial chain).
      Graph g = path_graph(n);
      for (VertexId u = 0; u < n; ++u) {
        for (VertexId v = static_cast<VertexId>(u + 2); v < n; ++v) {
          if (rng.bernoulli(sigma)) g.add_edge_unique(u, v);
        }
      }
      std::vector<double> h(n);
      for (std::size_t v = 0; v < n; ++v) h[v] = static_cast<double>(v);
      BinaryLinkReversal machine(g, orientation_from_heights(g, h),
                                 static_cast<VertexId>(n - 1),
                                 ReversalMode::kFull);
      total += static_cast<double>(machine.run().node_reversals);
    }
    const double avg = total / trials;
    t.add_row({Table::num(sigma, 2), Table::num(avg, 1),
               Table::num(avg / static_cast<double>(worst), 3)});
  }
  t.print(std::cout,
          "E4c: smoothed analysis [28] of full link reversal — a few "
          "random chords collapse the adversarial Theta(n^2) cost");
}

void maxflow_heights_table() {
  // Sec. III-B's other man-made layering: the MPM max-flow [17] adjusts
  // node heights (BFS levels) in rounds while keeping a destination-
  // oriented DAG. Phases = rounds of height adjustment.
  Table t({"n", "max_flow", "mpm_phases", "dinic_phases", "bound(n)"});
  Rng rng(5);
  for (std::size_t n : {16, 32, 64, 128}) {
    FlowNetwork mpm(n), dinic(n);
    for (VertexId u = 0; u < n; ++u) {
      for (VertexId v = 0; v < n; ++v) {
        if (u != v && rng.bernoulli(0.15)) {
          const auto cap = static_cast<std::int64_t>(rng.uniform_u64(1, 10));
          mpm.add_arc(u, v, cap);
          dinic.add_arc(u, v, cap);
        }
      }
    }
    const auto flow = mpm.max_flow_mpm(0, static_cast<VertexId>(n - 1));
    dinic.max_flow_dinic(0, static_cast<VertexId>(n - 1));
    t.add_row({Table::num(std::uint64_t(n)),
               Table::num(std::int64_t(flow)),
               Table::num(std::uint64_t(mpm.last_phase_count())),
               Table::num(std::uint64_t(dinic.last_phase_count())),
               Table::num(std::uint64_t(n))});
  }
  t.print(std::cout,
          "E4b: height-adjustment rounds in max-flow (MPM [17]) — phases "
          "stay far below the |V| bound on random networks");
}

void BM_FullReversalChain(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Graph g = path_graph(n);
  std::vector<double> heights(n);
  for (std::size_t v = 0; v < n; ++v) heights[v] = static_cast<double>(v);
  const Orientation o = orientation_from_heights(g, heights);
  for (auto _ : state) {
    BinaryLinkReversal machine(g, o, static_cast<VertexId>(n - 1),
                               ReversalMode::kFull);
    benchmark::DoNotOptimize(machine.run());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_FullReversalChain)->Range(8, 128)->Complexity();

void BM_PartialReversalChain(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Graph g = path_graph(n);
  std::vector<double> heights(n);
  for (std::size_t v = 0; v < n; ++v) heights[v] = static_cast<double>(v);
  const Orientation o = orientation_from_heights(g, heights);
  for (auto _ : state) {
    BinaryLinkReversal machine(g, o, static_cast<VertexId>(n - 1),
                               ReversalMode::kPartial);
    benchmark::DoNotOptimize(machine.run());
  }
}
BENCHMARK(BM_PartialReversalChain)->Range(8, 128);

}  // namespace
}  // namespace structnet

int main(int argc, char** argv) {
  structnet::fig4_table();
  structnet::worst_case_table();
  structnet::random_graph_table();
  structnet::smoothed_analysis_table();
  structnet::maxflow_heights_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
