// Experiment E0 (paper introduction, citing Kleinberg [2]): "if node
// connection follows the inverse-square distribution ... a localized
// solution exists in which each node knows only its own local
// connections and is capable of finding short paths with a high
// probability." Sweeps the long-range exponent r and lattice size.
#include <benchmark/benchmark.h>

#include <cmath>
#include <iostream>

#include "bench_util.hpp"
#include "obs/metrics.hpp"
#include "remapping/small_world.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace structnet {
namespace {

void exponent_sweep() {
  Table t({"exponent_r", "avg_greedy_hops", "vs_lattice_baseline"});
  Rng rng(1);
  const std::size_t side = 28;
  // Baseline: expected lattice-only distance on the torus = side / 2.
  const double baseline = static_cast<double>(side) / 2.0;
  for (double r : {0.0, 1.0, 1.5, 2.0, 2.5, 3.0, 4.0}) {
    double hops = 0.0;
    for (int instance = 0; instance < 3; ++instance) {
      const SmallWorldLattice lattice(side, r, rng);
      Rng pick(instance * 7 + 1);
      hops += average_greedy_hops(lattice, 400, pick);
    }
    hops /= 3.0;
    t.add_row({Table::num(r, 1), Table::num(hops, 2),
               Table::num(hops / baseline, 3)});
    BenchJson("smallworld_exponent_sweep")
        .field("n", std::uint64_t(side * side))
        .field("exponent_r", r)
        .field("avg_greedy_hops", hops)
        .field("vs_lattice_baseline", hops / baseline)
        .threads(1)
        .emit();
  }
  t.print(std::cout,
          "E0: greedy routing vs long-range exponent (28x28 torus). At "
          "laptop scale absolute hops grow with r (larger r = shorter "
          "long links); Kleinberg's r = 2 navigability shows up in the "
          "GROWTH RATES below, where the asymptotics live");
}

void size_sweep() {
  // The navigability signature: at r = 2 hops grow polylogarithmically
  // in n (flat hops/log^2 column); at r = 0 they grow as a power of the
  // side length (Kleinberg's Omega(side^(2/3)) lower bound), which the
  // fitted exponent exposes long before absolute values cross over.
  Table t({"side", "nodes", "hops(r=2)", "hops/log2(n)^2", "hops(r=0)"});
  Rng rng(2);
  std::vector<double> log_side, log_h0, log_h2;
  for (std::size_t side : {12, 18, 26, 36, 48}) {
    const SmallWorldLattice l2(side, 2.0, rng);
    const SmallWorldLattice l0(side, 0.0, rng);
    Rng pick(side);
    const double h2 = average_greedy_hops(l2, 400, pick);
    const double h0 = average_greedy_hops(l0, 400, pick);
    const double n = static_cast<double>(side * side);
    const double log2n = std::log2(n);
    log_side.push_back(std::log(static_cast<double>(side)));
    log_h0.push_back(std::log(h0));
    log_h2.push_back(std::log(h2));
    t.add_row({Table::num(std::uint64_t(side)),
               Table::num(std::uint64_t(side * side)), Table::num(h2, 2),
               Table::num(h2 / (log2n * log2n), 4), Table::num(h0, 2)});
    BenchJson("smallworld_size_sweep")
        .field("n", std::uint64_t(side * side))
        .field("side", std::uint64_t(side))
        .field("hops_r2", h2)
        .field("hops_r0", h0)
        .field("hops_r2_per_log2n_sq", h2 / (log2n * log2n))
        .threads(1)
        .emit();
  }
  t.print(std::cout,
          "E0: scaling — hops(r=2)/log^2 stays flat (polylog growth)");
  const auto fit0 = linear_fit(log_side, log_h0);
  const auto fit2 = linear_fit(log_side, log_h2);
  Table f({"exponent_r", "fitted hops ~ side^x", "note"});
  f.add_row({"0.0", Table::num(fit0.slope, 3),
             "matches Kleinberg's side^(2/3) lower bound"});
  f.add_row({"2.0", Table::num(fit2.slope, 3),
             "polylog advantage needs side >> laptop scale"});
  f.print(std::cout,
          "E0: growth exponents (the r=0 fit ~0.67 reproduces the lower "
          "bound quantitatively; r=2's asymptotic win is not visible in "
          "absolute hops at these sizes — see the scale-usage table)");
}

void scale_usage_table() {
  // Kleinberg's navigability signature that IS visible at small sizes:
  // at r = 2 the long link is useful at EVERY distance scale; at r = 0
  // it only fires far from the target; at r = 4 only close to it.
  const std::size_t side = 32;
  Rng rng(9);
  Table t({"distance_bucket", "long-link use r=0", "r=2", "r=4"});
  std::vector<std::vector<double>> used(3), steps(3);
  for (auto& v : used) v.assign(6, 0.0);
  for (auto& v : steps) v.assign(6, 0.0);
  const double exponents[3] = {0.0, 2.0, 4.0};
  for (int which = 0; which < 3; ++which) {
    const SmallWorldLattice lattice(side, exponents[which], rng);
    Rng pick(17);
    for (int trial = 0; trial < 600; ++trial) {
      auto cur = static_cast<VertexId>(pick.index(lattice.node_count()));
      const auto target =
          static_cast<VertexId>(pick.index(lattice.node_count()));
      while (cur != target) {
        const std::size_t d = lattice.lattice_distance(cur, target);
        const auto bucket = std::min<std::size_t>(
            5, static_cast<std::size_t>(std::log2(double(d)) + 0.0));
        const VertexId next = lattice.greedy_next_hop(cur, target);
        steps[which][bucket] += 1.0;
        used[which][bucket] += next == lattice.long_link(cur) &&
                               lattice.lattice_distance(cur, next) > 1;
        cur = next;
      }
    }
  }
  for (std::size_t b = 0; b < 6; ++b) {
    auto frac = [&](int which) {
      return steps[which][b] > 0 ? used[which][b] / steps[which][b] : 0.0;
    };
    const std::string label =
        "[" + std::to_string(1 << b) + "," + std::to_string(2 << b) + ")";
    t.add_row({label, Table::num(frac(0), 3), Table::num(frac(1), 3),
               Table::num(frac(2), 3)});
  }
  t.print(std::cout,
          "E0: fraction of greedy steps that ride the long link, by "
          "current distance to target — r = 2 helps across ALL scales "
          "(the mechanism behind polylog navigation)");
}

void greedy_route_timing() {
  Rng rng(4);
  const SmallWorldLattice lattice(32, 2.0, rng);
  Rng pick(5);
  const double ns = time_ns_per_op(2000, [&](std::size_t) {
    const auto s = static_cast<VertexId>(pick.index(lattice.node_count()));
    const auto t = static_cast<VertexId>(pick.index(lattice.node_count()));
    benchmark::DoNotOptimize(lattice.greedy_route_hops(s, t));
  });
  BenchJson("smallworld_greedy_route")
      .field("n", std::uint64_t(lattice.node_count()))
      .threads(1)
      .field("ns_per_route", ns)
      .emit();
}

void BM_LatticeConstruction(benchmark::State& state) {
  Rng rng(3);
  const auto side = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(SmallWorldLattice(side, 2.0, rng));
  }
}
BENCHMARK(BM_LatticeConstruction)->Arg(12)->Arg(24);

void BM_GreedyRoute(benchmark::State& state) {
  Rng rng(4);
  const SmallWorldLattice lattice(32, 2.0, rng);
  Rng pick(5);
  for (auto _ : state) {
    const auto s = static_cast<VertexId>(pick.index(lattice.node_count()));
    const auto t = static_cast<VertexId>(pick.index(lattice.node_count()));
    benchmark::DoNotOptimize(lattice.greedy_route_hops(s, t));
  }
}
BENCHMARK(BM_GreedyRoute);

}  // namespace
}  // namespace structnet

int main(int argc, char** argv) {
  structnet::exponent_sweep();
  structnet::size_sweep();
  structnet::scale_usage_table();
  structnet::greedy_route_timing();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  structnet::obs::emit_json(std::cout);
  return 0;
}
