// Experiment E2 (Fig. 2, Sec. II-B): the three journey-optimization
// problems — earliest completion time, minimum hop, fastest — on the
// reconstructed Fig. 2 VANET and on random-waypoint contact traces.
#include <benchmark/benchmark.h>

#include <iostream>

#include "mobility/contact_trace.hpp"
#include "mobility/mobility_models.hpp"
#include "temporal/fig2_example.hpp"
#include "temporal/journeys.hpp"
#include "temporal/weighted.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace structnet {
namespace {

void fig2_table() {
  const auto eg = fig2::build_core();
  Table t({"metric", "A->C journey", "value"});
  const auto ec = earliest_completion_journey(eg, fig2::A, fig2::C, 0);
  const auto mh = minimum_hop_journey(eg, fig2::A, fig2::C, 0);
  const auto fp = fastest_journey(eg, fig2::A, fig2::C, 0);
  auto fmt = [](const Journey& j) {
    std::string s;
    for (const auto& hop : j.hops) {
      s += std::to_string(hop.from) + "-" + std::to_string(hop.t) + "->";
    }
    if (!j.hops.empty()) s += std::to_string(j.hops.back().to);
    return s;
  };
  t.add_row({"earliest completion", fmt(*ec), Table::num(std::uint64_t(ec->completion()))});
  t.add_row({"minimum hop", fmt(*mh), Table::num(std::uint64_t(mh->hop_count()))});
  t.add_row({"fastest (span)", fmt(*fp), Table::num(std::uint64_t(fp->span()))});
  t.print(std::cout, "E2: Fig. 2 reconstructed VANET (A,B,C,D = 0,1,2,3)");

  Table conn({"start_time", "A connected to C"});
  for (TimeUnit s = 0; s < eg.horizon(); ++s) {
    conn.add_row({Table::num(std::uint64_t(s)),
                  is_connected_at(eg, fig2::A, fig2::C, s) ? "yes" : "no"});
  }
  conn.print(std::cout,
             "E2: 'A is connected to C at starting time units 0..4'");
}

void rwp_journey_table() {
  // On RWP traces, the three criteria trade off: earliest completion
  // minimizes arrival, min-hop uses fewer hops but arrives later,
  // fastest minimizes span by departing late.
  Table t({"radius", "pairs", "avg_arrival(EC)", "avg_hops(EC)",
           "avg_hops(MH)", "avg_arrival(MH)", "avg_span(EC)",
           "avg_span(Fastest)"});
  Rng rng(7);
  for (double radius : {0.15, 0.25, 0.35}) {
    RandomWaypointParams p;
    p.nodes = 30;
    p.steps = 60;
    const auto traj = random_waypoint(p, rng);
    const auto eg = contacts_from_trajectory(traj, radius);
    RunningStats arr_ec, hop_ec, hop_mh, arr_mh, span_ec, span_fp;
    Rng pick(1);
    for (int trial = 0; trial < 60; ++trial) {
      const auto s = static_cast<VertexId>(pick.index(p.nodes));
      const auto d = static_cast<VertexId>(pick.index(p.nodes));
      if (s == d) continue;
      const auto ec = earliest_completion_journey(eg, s, d, 0);
      if (!ec) continue;
      const auto mh = minimum_hop_journey(eg, s, d, 0);
      const auto fp = fastest_journey(eg, s, d, 0);
      arr_ec.add(ec->completion());
      hop_ec.add(static_cast<double>(ec->hop_count()));
      hop_mh.add(static_cast<double>(mh->hop_count()));
      arr_mh.add(mh->completion());
      span_ec.add(ec->span());
      span_fp.add(fp->span());
    }
    t.add_row({Table::num(radius, 2), Table::num(std::uint64_t(arr_ec.count())),
               Table::num(arr_ec.mean(), 2), Table::num(hop_ec.mean(), 2),
               Table::num(hop_mh.mean(), 2), Table::num(arr_mh.mean(), 2),
               Table::num(span_ec.mean(), 2), Table::num(span_fp.mean(), 2)});
  }
  t.print(std::cout,
          "E2: journey criteria on random-waypoint traces "
          "(min-hop <= EC hops; fastest span <= EC span; EC arrival <= MH "
          "arrival)");
}

void weighted_journey_table() {
  // E2w (Sec. II-B): "a weight can be the bandwidth, transmission
  // delay, or reliability" — the three objectives optimize different
  // journeys over the same weighted trace.
  Rng rng(23);
  RandomWaypointParams p;
  p.nodes = 24;
  p.steps = 50;
  const auto base = contacts_from_trajectory(random_waypoint(p, rng), 0.25);
  WeightedTemporalGraph eg(base.vertex_count(), base.horizon());
  for (const Contact& c : base.contacts()) {
    eg.add_contact(c.u, c.v, c.t, rng.uniform(0.1, 1.0));
  }
  RunningStats delay_cost, rel_ec, rel_opt, bw_ec, bw_opt;
  Rng pick(3);
  for (int trial = 0; trial < 80; ++trial) {
    const auto s = static_cast<VertexId>(pick.index(p.nodes));
    const auto d = static_cast<VertexId>(pick.index(p.nodes));
    if (s == d) continue;
    const auto md = min_delay_journey(eg, s, d, 0);
    if (!md) continue;
    const auto mr = max_reliability_journey(eg, s, d, 0);
    const auto mb = max_bandwidth_journey(eg, s, d, 0);
    // Compare against the unweighted earliest-completion journey's
    // aggregate values (what a weight-oblivious router would get).
    const auto ec = earliest_completion_journey(base, s, d, 0);
    double ec_rel = 1.0, ec_bw = 1e9;
    for (const auto& hop : ec->hops) {
      const double w = *eg.weight_of(hop.from, hop.to, hop.t);
      ec_rel *= w;
      ec_bw = std::min(ec_bw, w);
    }
    delay_cost.add(md->value);
    rel_ec.add(ec_rel);
    rel_opt.add(mr->value);
    bw_ec.add(ec_bw);
    bw_opt.add(mb->value);
  }
  Table t({"objective", "weight-aware", "weight-oblivious (EC journey)"});
  t.add_row({"min total delay", Table::num(delay_cost.mean(), 3), "-"});
  t.add_row({"max reliability", Table::num(rel_opt.mean(), 3),
             Table::num(rel_ec.mean(), 3)});
  t.add_row({"max bottleneck bandwidth", Table::num(bw_opt.mean(), 3),
             Table::num(bw_ec.mean(), 3)});
  t.print(std::cout,
          "E2w: weighted journeys — optimizing the right objective "
          "dominates the weight-oblivious earliest-completion route");
}

void pareto_frontier_table() {
  // E2w: the cost/completion trade-off — pay more to arrive earlier.
  Rng rng(31);
  RandomWaypointParams p;
  p.nodes = 20;
  p.steps = 60;
  const auto base = contacts_from_trajectory(random_waypoint(p, rng), 0.2);
  WeightedTemporalGraph eg(base.vertex_count(), base.horizon());
  for (const Contact& c : base.contacts()) {
    eg.add_contact(c.u, c.v, c.t, rng.uniform(0.1, 1.0));
  }
  RunningStats points, cost_spread, time_spread;
  Rng pick(32);
  for (int trial = 0; trial < 60; ++trial) {
    const auto s = static_cast<VertexId>(pick.index(p.nodes));
    const auto d = static_cast<VertexId>(pick.index(p.nodes));
    if (s == d) continue;
    const auto frontier = cost_completion_frontier(eg, s, d, 0);
    if (frontier.size() < 1) continue;
    points.add(static_cast<double>(frontier.size()));
    cost_spread.add(frontier.front().cost - frontier.back().cost);
    time_spread.add(static_cast<double>(frontier.back().completion -
                                        frontier.front().completion));
  }
  Table t({"metric", "value"});
  t.add_row({"avg Pareto points per pair", Table::num(points.mean(), 2)});
  t.add_row({"avg cost saved by waiting", Table::num(cost_spread.mean(), 2)});
  t.add_row({"avg extra wait (units)", Table::num(time_spread.mean(), 2)});
  t.print(std::cout,
          "E2w: cost/completion Pareto frontier on weighted RWP traces");
}

void BM_EarliestArrival(benchmark::State& state) {
  Rng rng(11);
  RandomWaypointParams p;
  p.nodes = static_cast<std::size_t>(state.range(0));
  p.steps = 100;
  const auto eg = contacts_from_trajectory(random_waypoint(p, rng), 0.2);
  VertexId s = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(earliest_arrival(eg, s, 0));
    s = static_cast<VertexId>((s + 1) % p.nodes);
  }
}
BENCHMARK(BM_EarliestArrival)->Arg(32)->Arg(64)->Arg(128);

void BM_MinimumHopJourney(benchmark::State& state) {
  Rng rng(13);
  RandomWaypointParams p;
  p.nodes = static_cast<std::size_t>(state.range(0));
  p.steps = 100;
  const auto eg = contacts_from_trajectory(random_waypoint(p, rng), 0.2);
  VertexId s = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        minimum_hop_journey(eg, s, static_cast<VertexId>(p.nodes - 1 - s), 0));
    s = static_cast<VertexId>((s + 1) % (p.nodes / 2));
  }
}
BENCHMARK(BM_MinimumHopJourney)->Arg(32)->Arg(64);

void BM_FastestJourney(benchmark::State& state) {
  Rng rng(17);
  RandomWaypointParams p;
  p.nodes = 48;
  p.steps = static_cast<std::size_t>(state.range(0));
  const auto eg = contacts_from_trajectory(random_waypoint(p, rng), 0.2);
  VertexId s = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fastest_journey(eg, s, static_cast<VertexId>(47 - s), 0));
    s = static_cast<VertexId>((s + 1) % 24);
  }
}
BENCHMARK(BM_FastestJourney)->Arg(50)->Arg(100)->Arg(200);

}  // namespace
}  // namespace structnet

int main(int argc, char** argv) {
  structnet::fig2_table();
  structnet::rwp_journey_table();
  structnet::weighted_journey_table();
  structnet::pareto_frontier_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
