// Experiment E2 (Fig. 2, Sec. II-B): the three journey-optimization
// problems — earliest completion time, minimum hop, fastest — on the
// reconstructed Fig. 2 VANET and on random-waypoint contact traces.
#include <benchmark/benchmark.h>

#include <chrono>
#include <iostream>

#include "bench_util.hpp"
#include "obs/metrics.hpp"
#include "mobility/contact_trace.hpp"
#include "mobility/mobility_models.hpp"
#include "temporal/fig2_example.hpp"
#include "temporal/journeys.hpp"
#include "temporal/temporal_csr.hpp"
#include "temporal/temporal_delta.hpp"
#include "temporal/weighted.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace structnet {
namespace {

void fig2_table() {
  const auto eg = fig2::build_core();
  Table t({"metric", "A->C journey", "value"});
  const auto ec = earliest_completion_journey(eg, fig2::A, fig2::C, 0);
  const auto mh = minimum_hop_journey(eg, fig2::A, fig2::C, 0);
  const auto fp = fastest_journey(eg, fig2::A, fig2::C, 0);
  auto fmt = [](const Journey& j) {
    std::string s;
    for (const auto& hop : j.hops) {
      s += std::to_string(hop.from) + "-" + std::to_string(hop.t) + "->";
    }
    if (!j.hops.empty()) s += std::to_string(j.hops.back().to);
    return s;
  };
  t.add_row({"earliest completion", fmt(*ec), Table::num(std::uint64_t(ec->completion()))});
  t.add_row({"minimum hop", fmt(*mh), Table::num(std::uint64_t(mh->hop_count()))});
  t.add_row({"fastest (span)", fmt(*fp), Table::num(std::uint64_t(fp->span()))});
  t.print(std::cout, "E2: Fig. 2 reconstructed VANET (A,B,C,D = 0,1,2,3)");

  Table conn({"start_time", "A connected to C"});
  for (TimeUnit s = 0; s < eg.horizon(); ++s) {
    conn.add_row({Table::num(std::uint64_t(s)),
                  is_connected_at(eg, fig2::A, fig2::C, s) ? "yes" : "no"});
  }
  conn.print(std::cout,
             "E2: 'A is connected to C at starting time units 0..4'");
}

void rwp_journey_table() {
  // On RWP traces, the three criteria trade off: earliest completion
  // minimizes arrival, min-hop uses fewer hops but arrives later,
  // fastest minimizes span by departing late.
  Table t({"radius", "pairs", "avg_arrival(EC)", "avg_hops(EC)",
           "avg_hops(MH)", "avg_arrival(MH)", "avg_span(EC)",
           "avg_span(Fastest)"});
  Rng rng(7);
  for (double radius : {0.15, 0.25, 0.35}) {
    RandomWaypointParams p;
    p.nodes = 30;
    p.steps = 60;
    const auto traj = random_waypoint(p, rng);
    const auto eg = contacts_from_trajectory(traj, radius);
    RunningStats arr_ec, hop_ec, hop_mh, arr_mh, span_ec, span_fp;
    Rng pick(1);
    for (int trial = 0; trial < 60; ++trial) {
      const auto s = static_cast<VertexId>(pick.index(p.nodes));
      const auto d = static_cast<VertexId>(pick.index(p.nodes));
      if (s == d) continue;
      const auto ec = earliest_completion_journey(eg, s, d, 0);
      if (!ec) continue;
      const auto mh = minimum_hop_journey(eg, s, d, 0);
      const auto fp = fastest_journey(eg, s, d, 0);
      arr_ec.add(ec->completion());
      hop_ec.add(static_cast<double>(ec->hop_count()));
      hop_mh.add(static_cast<double>(mh->hop_count()));
      arr_mh.add(mh->completion());
      span_ec.add(ec->span());
      span_fp.add(fp->span());
    }
    t.add_row({Table::num(radius, 2), Table::num(std::uint64_t(arr_ec.count())),
               Table::num(arr_ec.mean(), 2), Table::num(hop_ec.mean(), 2),
               Table::num(hop_mh.mean(), 2), Table::num(arr_mh.mean(), 2),
               Table::num(span_ec.mean(), 2), Table::num(span_fp.mean(), 2)});
  }
  t.print(std::cout,
          "E2: journey criteria on random-waypoint traces "
          "(min-hop <= EC hops; fastest span <= EC span; EC arrival <= MH "
          "arrival)");
}

void weighted_journey_table() {
  // E2w (Sec. II-B): "a weight can be the bandwidth, transmission
  // delay, or reliability" — the three objectives optimize different
  // journeys over the same weighted trace.
  Rng rng(23);
  RandomWaypointParams p;
  p.nodes = 24;
  p.steps = 50;
  const auto base = contacts_from_trajectory(random_waypoint(p, rng), 0.25);
  WeightedTemporalGraph eg(base.vertex_count(), base.horizon());
  for (const Contact& c : base.contacts()) {
    eg.add_contact(c.u, c.v, c.t, rng.uniform(0.1, 1.0));
  }
  RunningStats delay_cost, rel_ec, rel_opt, bw_ec, bw_opt;
  Rng pick(3);
  for (int trial = 0; trial < 80; ++trial) {
    const auto s = static_cast<VertexId>(pick.index(p.nodes));
    const auto d = static_cast<VertexId>(pick.index(p.nodes));
    if (s == d) continue;
    const auto md = min_delay_journey(eg, s, d, 0);
    if (!md) continue;
    const auto mr = max_reliability_journey(eg, s, d, 0);
    const auto mb = max_bandwidth_journey(eg, s, d, 0);
    // Compare against the unweighted earliest-completion journey's
    // aggregate values (what a weight-oblivious router would get).
    const auto ec = earliest_completion_journey(base, s, d, 0);
    double ec_rel = 1.0, ec_bw = 1e9;
    for (const auto& hop : ec->hops) {
      const double w = *eg.weight_of(hop.from, hop.to, hop.t);
      ec_rel *= w;
      ec_bw = std::min(ec_bw, w);
    }
    delay_cost.add(md->value);
    rel_ec.add(ec_rel);
    rel_opt.add(mr->value);
    bw_ec.add(ec_bw);
    bw_opt.add(mb->value);
  }
  Table t({"objective", "weight-aware", "weight-oblivious (EC journey)"});
  t.add_row({"min total delay", Table::num(delay_cost.mean(), 3), "-"});
  t.add_row({"max reliability", Table::num(rel_opt.mean(), 3),
             Table::num(rel_ec.mean(), 3)});
  t.add_row({"max bottleneck bandwidth", Table::num(bw_opt.mean(), 3),
             Table::num(bw_ec.mean(), 3)});
  t.print(std::cout,
          "E2w: weighted journeys — optimizing the right objective "
          "dominates the weight-oblivious earliest-completion route");
}

void pareto_frontier_table() {
  // E2w: the cost/completion trade-off — pay more to arrive earlier.
  Rng rng(31);
  RandomWaypointParams p;
  p.nodes = 20;
  p.steps = 60;
  const auto base = contacts_from_trajectory(random_waypoint(p, rng), 0.2);
  WeightedTemporalGraph eg(base.vertex_count(), base.horizon());
  for (const Contact& c : base.contacts()) {
    eg.add_contact(c.u, c.v, c.t, rng.uniform(0.1, 1.0));
  }
  RunningStats points, cost_spread, time_spread;
  Rng pick(32);
  for (int trial = 0; trial < 60; ++trial) {
    const auto s = static_cast<VertexId>(pick.index(p.nodes));
    const auto d = static_cast<VertexId>(pick.index(p.nodes));
    if (s == d) continue;
    const auto frontier = cost_completion_frontier(eg, s, d, 0);
    if (frontier.size() < 1) continue;
    points.add(static_cast<double>(frontier.size()));
    cost_spread.add(frontier.front().cost - frontier.back().cost);
    time_spread.add(static_cast<double>(frontier.back().completion -
                                        frontier.front().completion));
  }
  Table t({"metric", "value"});
  t.add_row({"avg Pareto points per pair", Table::num(points.mean(), 2)});
  t.add_row({"avg cost saved by waiting", Table::num(cost_spread.mean(), 2)});
  t.add_row({"avg extra wait (units)", Table::num(time_spread.mean(), 2)});
  t.print(std::cout,
          "E2w: cost/completion Pareto frontier on weighted RWP traces");
}

void csr_sweep_speedup_table() {
  // The PR-3 acceptance experiment: all-sources earliest-arrival sweeps
  // on a 20k-vertex synthetic contact trace, legacy bucketed kernel vs.
  // the flat CSR frontier kernel (single thread). The CSR kernel stops
  // as soon as every vertex is reached, so it never pays for the long
  // tail of the horizon the legacy kernel re-buckets and scans.
  const std::size_t n = 20000;
  const TimeUnit horizon = 512;
  const std::size_t edges = 150000;
  const std::size_t labels_per_edge = 8;
  Rng rng(101);
  TemporalGraph eg(n, horizon);
  for (std::size_t i = 0; i < edges; ++i) {
    const auto u = static_cast<VertexId>(rng.index(n));
    const auto v = static_cast<VertexId>(rng.index(n));
    if (u == v) continue;
    for (std::size_t k = 0; k < labels_per_edge; ++k) {
      eg.add_contact(u, v, static_cast<TimeUnit>(rng.index(horizon)));
    }
  }
  const auto build_start = std::chrono::steady_clock::now();
  const TemporalCsr csr(eg);
  const auto build_stop = std::chrono::steady_clock::now();
  const double build_ns =
      static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                              build_stop - build_start)
                              .count());

  std::vector<VertexId> sources;
  for (std::size_t i = 0; i < 16; ++i) {
    sources.push_back(static_cast<VertexId>((i * n) / 16));
  }

  // Equivalence check on the sampled sources before timing.
  bool match = true;
  TemporalWorkspace ws;
  for (const VertexId s : sources) {
    const auto oracle = earliest_arrival(eg, s, 0);
    csr_earliest_arrival(csr, s, 0, ws);
    for (std::size_t v = 0; v < n && match; ++v) {
      match = ws.arrival(static_cast<VertexId>(v)) == oracle.completion[v] &&
              ws.via(static_cast<VertexId>(v)) == oracle.via[v];
    }
  }

  const double legacy_ns = time_ns_per_op(sources.size(), [&](std::size_t i) {
    benchmark::DoNotOptimize(earliest_arrival(eg, sources[i], 0));
  });
  const double csr_ns = time_ns_per_op(sources.size(), [&](std::size_t i) {
    csr_earliest_arrival(csr, sources[i], 0, ws);
    benchmark::DoNotOptimize(ws.reached_count());
  });
  const double speedup = csr_ns > 0.0 ? legacy_ns / csr_ns : 0.0;

  Table t({"impl", "ms_per_sweep", "speedup_vs_legacy", "results_match"});
  t.add_row({"legacy", Table::num(legacy_ns / 1e6, 3), "1.000",
             match ? "yes" : "NO"});
  t.add_row({"csr", Table::num(csr_ns / 1e6, 3), Table::num(speedup, 3),
             match ? "yes" : "NO"});
  t.print(std::cout,
          "E2csr: earliest-arrival sweep, 20k vertices / " +
              std::to_string(csr.contact_count()) +
              " contacts / horizon 512 (single thread)");

  BenchJson("temporal_ea_sweep")
      .field("impl", "legacy")
      .field("n", std::uint64_t(n))
      .field("contacts", std::uint64_t(csr.contact_count()))
      .threads(1)
      .field("ns_per_sweep", legacy_ns)
      .emit();
  BenchJson("temporal_ea_sweep")
      .field("impl", "csr")
      .field("n", std::uint64_t(n))
      .field("contacts", std::uint64_t(csr.contact_count()))
      .threads(1)
      .field("ns_per_sweep", csr_ns)
      .field("speedup_vs_legacy", speedup)
      .field("results_match", match ? "yes" : "no")
      .emit();
  BenchJson("temporal_csr_build")
      .field("n", std::uint64_t(n))
      .field("contacts", std::uint64_t(csr.contact_count()))
      .threads(1)
      .field("build_ns", build_ns)
      .emit();
}

void churn_index_maintenance_table() {
  // Batch planning under churn: at 1% churn per round, folding events
  // into the DeltaTemporalCsr overlay must beat a full TemporalCsr
  // rebuild by >= 10x, with the three CSR kernels remaining
  // bit-identical over the merged view.
  const std::size_t n = 20000;
  const TimeUnit horizon = 512;
  const std::size_t edges = 150000;
  const std::size_t labels_per_edge = 8;
  Rng rng(103);
  TemporalGraph eg(n, horizon);
  for (std::size_t i = 0; i < edges; ++i) {
    const auto u = static_cast<VertexId>(rng.index(n));
    const auto v = static_cast<VertexId>(rng.index(n));
    if (u == v) continue;
    for (std::size_t k = 0; k < labels_per_edge; ++k) {
      eg.add_contact(u, v, static_cast<TimeUnit>(rng.index(horizon)));
    }
  }

  DeltaTemporalCsr delta(eg);
  const std::size_t churn = delta.contact_count() / 100;  // 1% per round

  const auto now = [] { return std::chrono::steady_clock::now(); };
  const auto ns_between = [](std::chrono::steady_clock::time_point a,
                             std::chrono::steady_clock::time_point b) {
    return static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(b - a).count());
  };

  std::vector<double> delta_round_ns, rebuild_round_ns;
  bool match = true;
  TemporalWorkspace wsa, wsb;
  constexpr int kRounds = 6;
  for (int round = 0; round < kRounds; ++round) {
    // This round's churn, shaped like contact churn in a mobile trace:
    // mostly fresh time labels on recurring pairs (encounters repeat),
    // a few first-ever pairs, and removals of live labels.
    struct Op {
      bool add;
      VertexId u, v;
      TimeUnit t;
    };
    const std::vector<Contact> live = eg.contacts();
    std::vector<Op> ops;
    ops.reserve(churn);
    for (std::size_t i = 0; i < churn; ++i) {
      const double dice = rng.uniform01();
      if (dice < 0.3) {
        const Contact& c = live[rng.index(live.size())];
        ops.push_back({false, c.u, c.v, c.t});
      } else if (dice < 0.9) {
        const Contact& c = live[rng.index(live.size())];
        ops.push_back({true, c.u, c.v,
                       static_cast<TimeUnit>(rng.index(horizon))});
      } else {
        const auto u = static_cast<VertexId>(rng.index(n));
        auto v = static_cast<VertexId>(rng.index(n));
        if (u == v) v = static_cast<VertexId>((v + 1) % n);
        ops.push_back({true, u, v, static_cast<TimeUnit>(rng.index(horizon))});
      }
    }

    // Delta planning: fold the churn and run the compaction check —
    // everything the broker's plan phase pays per batch.
    const auto d0 = now();
    for (std::size_t i = 0; i < ops.size(); ++i) {
      // Overlap the next op's cache misses with this op's work — the
      // fold is latency-bound, and the whole batch is known up front.
      if (i + 1 < ops.size()) {
        const Op& nx = ops[i + 1];
        delta.prefetch_contact(nx.u, nx.v, nx.t);
      }
      const Op& op = ops[i];
      if (op.add) {
        delta.add_contact(op.u, op.v, op.t);
      } else {
        delta.remove_contact(op.u, op.v, op.t);
      }
    }
    const bool compact = delta.needs_compaction(0.25);
    const auto d1 = now();
    delta_round_ns.push_back(ns_between(d0, d1));

    // Mirror into the graph (both planners serve the same state), then
    // legacy planning: a full rebuild.
    for (const Op& op : ops) {
      if (op.add) {
        eg.add_contact(op.u, op.v, op.t);
      } else {
        eg.remove_label(op.u, op.v, op.t);
      }
    }
    const auto r0 = now();
    const TemporalCsr fresh(eg);
    const auto r1 = now();
    rebuild_round_ns.push_back(ns_between(r0, r1));
    if (compact) delta.rebase(eg);  // does not fire at 1% churn

    // Kernel bit-identity over the merged view.
    for (std::size_t i = 0; i < 4 && match; ++i) {
      const auto s = static_cast<VertexId>((i * n) / 4 + round);
      csr_earliest_arrival(fresh, s, 0, wsa);
      csr_earliest_arrival(delta, s, 0, wsb);
      for (std::size_t v = 0; v < n && match; ++v) {
        match = wsa.arrival(static_cast<VertexId>(v)) ==
                    wsb.arrival(static_cast<VertexId>(v)) &&
                wsa.via(static_cast<VertexId>(v)) ==
                    wsb.via(static_cast<VertexId>(v));
      }
      const auto d = static_cast<VertexId>(((i + 1) * n) / 4 - 1);
      match = match &&
              csr_fastest_departure(fresh, s, d, 0, wsa) ==
                  csr_fastest_departure(delta, s, d, 0, wsb) &&
              csr_minimum_hop_journey(fresh, s, d, 0, wsa) ==
                  csr_minimum_hop_journey(delta, s, d, 0, wsb);
    }
  }

  // Per-round medians: the timed sections are ~10ms each, long enough
  // to be preempted on a busy host, so a single slow round would skew a
  // plain mean. Ratios are paired per round, which also cancels
  // host-wide slowdowns that hit both planners alike.
  const auto median = [](std::vector<double> xs) {
    std::sort(xs.begin(), xs.end());
    const std::size_t mid = xs.size() / 2;
    return xs.size() % 2 != 0 ? xs[mid] : 0.5 * (xs[mid - 1] + xs[mid]);
  };
  std::vector<double> ratios;
  for (int r = 0; r < kRounds; ++r) {
    if (delta_round_ns[r] > 0.0) {
      ratios.push_back(rebuild_round_ns[r] / delta_round_ns[r]);
    }
  }
  const double per_round_delta = median(delta_round_ns);
  const double per_round_rebuild = median(rebuild_round_ns);
  const double speedup = ratios.empty() ? 0.0 : median(ratios);
  Table t({"planner", "ms_per_round", "speedup", "results_match"});
  t.add_row({"rebuild", Table::num(per_round_rebuild / 1e6, 3), "1.000",
             match ? "yes" : "NO"});
  t.add_row({"delta", Table::num(per_round_delta / 1e6, 3),
             Table::num(speedup, 3), match ? "yes" : "NO"});
  t.print(std::cout, "E2churn: index maintenance at 1% churn per round (" +
                         std::to_string(churn) +
                         " events/round, single thread)");
  BenchJson("churn_index_maintenance")
      .field("n", std::uint64_t(n))
      .field("contacts", std::uint64_t(delta.contact_count()))
      .field("churn_events_per_round", std::uint64_t(churn))
      .threads(1)
      .field("rebuild_ns_per_round", per_round_rebuild)
      .field("delta_ns_per_round", per_round_delta)
      .field("speedup_vs_rebuild", speedup)
      .field("results_match", match ? "yes" : "no")
      .emit();
}

void journey_kernel_speedup_table() {
  // fastest_journey used to run one full earliest-arrival sweep per
  // candidate departure time; the CSR profile kernel is one pass plus a
  // single sweep. minimum_hop_journey used to Bellman-Ford over every
  // edge per layer; the CSR kernel relaxes only frontier contacts.
  Rng rng(41);
  RandomWaypointParams p;
  p.nodes = 200;
  p.steps = 200;
  const auto eg = contacts_from_trajectory(random_waypoint(p, rng), 0.15);
  const TemporalCsr csr(eg);
  TemporalWorkspace ws;

  std::vector<std::pair<VertexId, VertexId>> pairs;
  Rng pick(5);
  while (pairs.size() < 48) {
    const auto s = static_cast<VertexId>(pick.index(p.nodes));
    const auto d = static_cast<VertexId>(pick.index(p.nodes));
    if (s != d) pairs.emplace_back(s, d);
  }

  bool match = true;
  for (const auto& [s, d] : pairs) {
    const auto fl = legacy::fastest_journey(eg, s, d, 0);
    const auto fc = csr_fastest_departure(csr, s, d, 0, ws);
    match = match && fl.has_value() == fc.has_value() &&
            (!fl || fl->span() == fc->second - fc->first);
    const auto ml = legacy::minimum_hop_journey(eg, s, d, 0);
    const auto mc = csr_minimum_hop_journey(csr, s, d, 0, ws);
    match = match && ml == mc;
  }

  Table t({"kernel", "legacy us_per_query", "csr us_per_query", "speedup"});
  const auto report = [&](std::string_view kernel, double legacy_ns,
                          double csr_ns) {
    const double speedup = csr_ns > 0.0 ? legacy_ns / csr_ns : 0.0;
    t.add_row({std::string(kernel), Table::num(legacy_ns / 1e3, 2),
               Table::num(csr_ns / 1e3, 2), Table::num(speedup, 2)});
    BenchJson(kernel)
        .field("n", std::uint64_t(eg.vertex_count()))
        .field("contacts", std::uint64_t(csr.contact_count()))
        .threads(1)
        .field("legacy_ns_per_query", legacy_ns)
        .field("csr_ns_per_query", csr_ns)
        .field("speedup_vs_legacy", speedup)
        .field("results_match", match ? "yes" : "no")
        .emit();
  };
  report("temporal_fastest_journey",
         time_ns_per_op(pairs.size(),
                        [&](std::size_t i) {
                          benchmark::DoNotOptimize(legacy::fastest_journey(
                              eg, pairs[i].first, pairs[i].second, 0));
                        }),
         time_ns_per_op(pairs.size(), [&](std::size_t i) {
           benchmark::DoNotOptimize(csr_fastest_departure(
               csr, pairs[i].first, pairs[i].second, 0, ws));
         }));
  report("temporal_minimum_hop",
         time_ns_per_op(pairs.size(),
                        [&](std::size_t i) {
                          benchmark::DoNotOptimize(legacy::minimum_hop_journey(
                              eg, pairs[i].first, pairs[i].second, 0));
                        }),
         time_ns_per_op(pairs.size(), [&](std::size_t i) {
           benchmark::DoNotOptimize(csr_minimum_hop_journey(
               csr, pairs[i].first, pairs[i].second, 0, ws));
         }));
  t.print(std::cout,
          "E2csr: per-query journey kernels on an RWP trace (200 nodes)");
}

void BM_EarliestArrival(benchmark::State& state) {
  Rng rng(11);
  RandomWaypointParams p;
  p.nodes = static_cast<std::size_t>(state.range(0));
  p.steps = 100;
  const auto eg = contacts_from_trajectory(random_waypoint(p, rng), 0.2);
  VertexId s = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(earliest_arrival(eg, s, 0));
    s = static_cast<VertexId>((s + 1) % p.nodes);
  }
}
BENCHMARK(BM_EarliestArrival)->Arg(32)->Arg(64)->Arg(128);

void BM_MinimumHopJourney(benchmark::State& state) {
  Rng rng(13);
  RandomWaypointParams p;
  p.nodes = static_cast<std::size_t>(state.range(0));
  p.steps = 100;
  const auto eg = contacts_from_trajectory(random_waypoint(p, rng), 0.2);
  VertexId s = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        minimum_hop_journey(eg, s, static_cast<VertexId>(p.nodes - 1 - s), 0));
    s = static_cast<VertexId>((s + 1) % (p.nodes / 2));
  }
}
BENCHMARK(BM_MinimumHopJourney)->Arg(32)->Arg(64);

void BM_FastestJourney(benchmark::State& state) {
  Rng rng(17);
  RandomWaypointParams p;
  p.nodes = 48;
  p.steps = static_cast<std::size_t>(state.range(0));
  const auto eg = contacts_from_trajectory(random_waypoint(p, rng), 0.2);
  VertexId s = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fastest_journey(eg, s, static_cast<VertexId>(47 - s), 0));
    s = static_cast<VertexId>((s + 1) % 24);
  }
}
BENCHMARK(BM_FastestJourney)->Arg(50)->Arg(100)->Arg(200);

}  // namespace
}  // namespace structnet

int main(int argc, char** argv) {
  structnet::fig2_table();
  structnet::rwp_journey_table();
  structnet::weighted_journey_table();
  structnet::pareto_frontier_table();
  structnet::csr_sweep_speedup_table();
  structnet::journey_kernel_speedup_table();
  structnet::churn_index_maintenance_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  structnet::obs::emit_json(std::cout);
  return 0;
}
