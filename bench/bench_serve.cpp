// Query-serving benchmark: the broker's three levers measured head-on.
//
//   * cache on/off — ns per query for same-epoch repeats; the epoch-keyed
//     result cache must be >= 10x faster than uncached re-execution.
//   * throughput vs offered load — queries/sec through submit+flush at
//     increasing batch sizes, serial and default-parallel.
//   * shed rate vs queue bound — fraction of a fixed burst shed by
//     admission control as max_queue shrinks (backpressure, not blocking).
#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <future>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/broker.hpp"
#include "serve/query.hpp"
#include "stream/engine.hpp"
#include "stream/observers.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace structnet {
namespace {

constexpr std::size_t kNodes = 256;
constexpr TimeUnit kHorizon = 64;

/// Engine + temporal view filled with a random contact workload.
struct ServeFixture {
  StreamEngine engine;
  TemporalViewObserver view{kNodes, kHorizon};

  explicit ServeFixture(std::uint64_t seed = 17)
      : engine{DynamicGraph(kNodes)} {
    engine.attach(&view);
    Rng rng(seed);
    std::vector<Event> events;
    for (std::size_t i = 0; i < 6'000; ++i) {
      const auto u = static_cast<VertexId>(rng.index(kNodes));
      const auto v = static_cast<VertexId>(rng.index(kNodes));
      if (rng.uniform01() < 0.25) {
        events.push_back(Event::edge_insert(u, v));
      } else {
        events.push_back(Event::contact_add(
            u, v, static_cast<TimeUnit>(rng.index(kHorizon))));
      }
    }
    engine.apply_batch(events);
  }
};

/// Submits `queries` and flushes until every future resolves; returns
/// ns per query.
double drive(QueryBroker& broker, const std::vector<Query>& queries) {
  return time_ns_per_op(1, [&](std::size_t) {
    std::vector<std::future<QueryResult>> futures;
    futures.reserve(queries.size());
    for (const Query& q : queries) futures.push_back(broker.submit(q));
    while (broker.queue_depth() > 0) broker.flush();
    for (auto& f : futures) f.get();
  }) / static_cast<double>(queries.size());
}

std::vector<Query> distinct_temporal_queries(std::size_t count) {
  std::vector<Query> qs;
  qs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    qs.emplace_back(TemporalDistancesQuery{
        static_cast<VertexId>(i % kNodes),
        static_cast<TimeUnit>((i / kNodes) % kHorizon)});
  }
  return qs;
}

void cache_speedup_table() {
  ServeFixture fx;
  Table t({"queries", "uncached_ns_per_q", "cached_ns_per_q", "speedup"});
  for (const std::size_t count : {std::size_t{64}, std::size_t{256}}) {
    const std::vector<Query> queries = distinct_temporal_queries(count);

    BrokerConfig off;
    off.threads = 1;
    off.cache_bytes = 0;  // every repeat re-executes
    QueryBroker uncached(fx.engine, &fx.view, off);
    (void)drive(uncached, queries);  // warm the shared contact index
    const double cold_ns = drive(uncached, queries);

    BrokerConfig on;
    on.threads = 1;
    QueryBroker cached(fx.engine, &fx.view, on);
    (void)drive(cached, queries);  // first pass fills the cache
    const double hit_ns = drive(cached, queries);  // same epoch: all hits

    const double speedup = hit_ns > 0.0 ? cold_ns / hit_ns : 0.0;
    t.add_row({std::to_string(count), std::to_string(cold_ns),
               std::to_string(hit_ns), std::to_string(speedup)});
    BenchJson("serve_cache_speedup")
        .field("n", std::uint64_t(count))
        .field("uncached_ns_per_query", cold_ns)
        .field("cached_ns_per_query", hit_ns)
        .field("speedup", speedup)
        .threads(1)
        .emit();
  }
  t.print(std::cout, "result cache: same-epoch repeats, on vs off");
}

void throughput_table() {
  Table t({"offered", "threads", "ns_per_query", "queries_per_sec"});
  for (const std::size_t threads : {std::size_t{1}, std::size_t{0}}) {
    ServeFixture fx;
    BrokerConfig cfg;
    cfg.threads = threads;
    cfg.cache_bytes = 0;  // measure execution, not hits
    cfg.max_queue = 8192;
    QueryBroker broker(fx.engine, &fx.view, cfg);
    for (const std::size_t offered :
         {std::size_t{64}, std::size_t{256}, std::size_t{1024}}) {
      const std::vector<Query> queries = distinct_temporal_queries(offered);
      (void)drive(broker, queries);  // warm up (index build, pool spin-up)
      const double ns = drive(broker, queries);
      const double qps = ns > 0.0 ? 1e9 / ns : 0.0;
      t.add_row({std::to_string(offered), std::to_string(threads),
                 std::to_string(ns), std::to_string(qps)});
      BenchJson("serve_throughput")
          .field("n", std::uint64_t(offered))
          .field("ns_per_op", ns)
          .field("queries_per_sec", qps)
          .threads(threads)
          .emit();
    }
  }
  t.print(std::cout, "serving throughput vs offered load");
}

void shed_rate_table() {
  constexpr std::size_t kBurst = 2048;
  Table t({"max_queue", "offered", "shed", "shed_rate"});
  for (const std::size_t max_queue :
       {std::size_t{64}, std::size_t{256}, std::size_t{1024}}) {
    ServeFixture fx;
    BrokerConfig cfg;
    cfg.threads = 1;
    cfg.max_queue = max_queue;
    QueryBroker broker(fx.engine, &fx.view, cfg);

    std::vector<std::future<QueryResult>> futures;
    futures.reserve(kBurst);
    const std::vector<Query> queries = distinct_temporal_queries(kBurst);
    for (const Query& q : queries) futures.push_back(broker.submit(q));
    while (broker.queue_depth() > 0) broker.flush();
    for (auto& f : futures) f.get();

    const ServeStats stats = broker.stats();
    const double rate =
        static_cast<double>(stats.shed_queue_full) / double(kBurst);
    t.add_row({std::to_string(max_queue), std::to_string(kBurst),
               std::to_string(stats.shed_queue_full), std::to_string(rate)});
    BenchJson("serve_shed_rate")
        .field("n", std::uint64_t(max_queue))
        .field("offered", std::uint64_t(kBurst))
        .field("shed", stats.shed_queue_full)
        .field("shed_rate", rate)
        .threads(1)
        .emit();
  }
  t.print(std::cout, "admission control: shed rate vs queue bound");
}

/// Interleaved churn + temporal queries: the delta planner folds events
/// into its overlay while the legacy planner rebuilds the contact index
/// on every epoch change. Same event/query sequence in both modes, so
/// the served payloads must agree byte-for-byte.
void churn_serving_table() {
  struct Mode {
    double ns_per_round = 0.0;
    ServeStats stats;
    std::vector<TimeUnit> probe;
  };
  constexpr std::size_t kRounds = 40, kChurn = 60, kQueries = 4;
  const auto run = [&](bool delta_index) {
    ServeFixture fx(29);
    BrokerConfig cfg;
    cfg.threads = 1;
    cfg.cache_bytes = 0;  // measure planning + execution, not hits
    cfg.deterministic = true;
    cfg.delta_index = delta_index;
    QueryBroker broker(fx.engine, &fx.view, cfg);

    Rng rng(5);
    Mode m;
    m.ns_per_round =
        time_ns_per_op(kRounds, [&](std::size_t) {
          std::vector<Event> batch;
          batch.reserve(kChurn);
          for (std::size_t i = 0; i < kChurn; ++i) {
            const auto u = static_cast<VertexId>(rng.index(kNodes));
            auto v = static_cast<VertexId>(rng.index(kNodes));
            if (u == v) v = static_cast<VertexId>((v + 1) % kNodes);
            const auto t = static_cast<TimeUnit>(rng.index(kHorizon));
            if (rng.uniform01() < 0.2) {
              batch.push_back(Event::contact_relabel(
                  u, v, t, static_cast<TimeUnit>(rng.index(kHorizon))));
            } else {
              batch.push_back(Event::contact_add(u, v, t));
            }
          }
          broker.apply_events(batch);
          std::vector<std::future<QueryResult>> futures;
          for (std::size_t q = 0; q < kQueries; ++q) {
            futures.push_back(broker.submit(TemporalDistancesQuery{
                static_cast<VertexId>(rng.index(kNodes)), 0}));
          }
          broker.flush();
          for (auto& f : futures) f.get();
        });
    auto probe = broker.submit(TemporalDistancesQuery{7, 0});
    broker.flush();
    m.probe = std::get<std::vector<TimeUnit>>(probe.get().payload);
    m.stats = broker.stats();
    return m;
  };

  const Mode delta = run(true);
  const Mode legacy = run(false);
  const bool match = delta.probe == legacy.probe;
  const double speedup = delta.ns_per_round > 0.0
                             ? legacy.ns_per_round / delta.ns_per_round
                             : 0.0;
  Table t({"planner", "us_per_round", "csr_builds", "csr_delta_appends",
           "csr_compactions", "results_match"});
  t.add_row({"legacy", Table::num(legacy.ns_per_round / 1e3, 1),
             Table::num(legacy.stats.csr_builds),
             Table::num(legacy.stats.csr_delta_appends),
             Table::num(legacy.stats.csr_compactions), match ? "yes" : "NO"});
  t.add_row({"delta", Table::num(delta.ns_per_round / 1e3, 1),
             Table::num(delta.stats.csr_builds),
             Table::num(delta.stats.csr_delta_appends),
             Table::num(delta.stats.csr_compactions), match ? "yes" : "NO"});
  t.print(std::cout, "churn serving: delta-advance planning vs legacy "
                     "rebuild-per-epoch (" +
                         std::to_string(kChurn) + " events + " +
                         std::to_string(kQueries) + " queries per round)");
  for (const Mode* m : {&delta, &legacy}) {
    BenchJson("serve_churn")
        .field("impl", m == &delta ? "delta" : "legacy")
        .field("n", std::uint64_t(kRounds))
        .threads(1)
        .field("ns_per_round", m->ns_per_round)
        .field("csr_builds", m->stats.csr_builds)
        .field("csr_reuses", m->stats.csr_reuses)
        .field("csr_delta_appends", m->stats.csr_delta_appends)
        .field("csr_compactions", m->stats.csr_compactions)
        .field("speedup_vs_legacy",
               m == &delta ? speedup : 1.0)
        .field("results_match", match ? "yes" : "no")
        .emit();
  }
}

void lane_pack_table() {
  // Batched TemporalDistances serving: the scalar planner (one sweep
  // per query) vs the lane-packing planner (distinct (source, t_start)
  // queries share 64-lane sweeps). Payloads are cross-checked
  // bit-identical before timing; sweeps_saved must grow with depth.
  Table t({"queued", "scalar_ns_per_q", "packed_ns_per_q", "speedup",
           "lanes_packed", "sweeps_saved", "results_match"});
  for (const std::size_t count :
       {std::size_t{8}, std::size_t{64}, std::size_t{256}}) {
    const std::vector<Query> queries = distinct_temporal_queries(count);

    ServeFixture fx_scalar, fx_packed;
    BrokerConfig scalar_cfg;
    scalar_cfg.threads = 1;
    scalar_cfg.deterministic = true;
    scalar_cfg.cache_bytes = 0;  // every drive re-executes
    scalar_cfg.lane_pack = false;
    BrokerConfig packed_cfg = scalar_cfg;
    packed_cfg.lane_pack = true;
    QueryBroker scalar(fx_scalar.engine, &fx_scalar.view, scalar_cfg);
    QueryBroker packed(fx_packed.engine, &fx_packed.view, packed_cfg);

    // Bit-identity gate (also warms both brokers' contact indexes).
    bool match = true;
    {
      std::vector<std::future<QueryResult>> fs, fp;
      for (const Query& q : queries) {
        fs.push_back(scalar.submit(q));
        fp.push_back(packed.submit(q));
      }
      while (scalar.queue_depth() > 0) scalar.flush();
      while (packed.queue_depth() > 0) packed.flush();
      for (std::size_t i = 0; i < count; ++i) {
        match = match &&
                payload_equal(fs[i].get().payload, fp[i].get().payload);
      }
    }

    const ServeStats before = packed.stats();
    const double scalar_ns = drive(scalar, queries);
    const double packed_ns = drive(packed, queries);
    const ServeStats after = packed.stats();
    const std::uint64_t lanes = after.lanes_packed - before.lanes_packed;
    const std::uint64_t saved = after.sweeps_saved - before.sweeps_saved;
    const double speedup = packed_ns > 0.0 ? scalar_ns / packed_ns : 0.0;

    t.add_row({Table::num(std::uint64_t(count)), Table::num(scalar_ns, 0),
               Table::num(packed_ns, 0), Table::num(speedup, 2),
               Table::num(lanes), Table::num(saved),
               match ? "yes" : "NO"});
    BenchJson("serve_lane_pack")
        .field("queued", std::uint64_t(count))
        .field("scalar_ns_per_query", scalar_ns)
        .field("packed_ns_per_query", packed_ns)
        .field("speedup", speedup)
        .field("lanes_packed", lanes)
        .field("sweeps_saved", saved)
        .field("results_match", match ? "yes" : "no")
        .threads(1)
        .emit();
  }
  t.print(std::cout,
          "lane-packed planner: batched TemporalDistances, scalar vs "
          "shared 64-lane sweeps");
}

void serve_stats_smoke() {
  // One mixed run whose ServeStats JSON line lands in the BENCH stream.
  ServeFixture fx;
  QueryBroker broker(fx.engine, &fx.view);
  std::vector<std::future<QueryResult>> futures;
  for (std::size_t round = 0; round < 3; ++round) {
    for (const Query& q : distinct_temporal_queries(128)) {
      futures.push_back(broker.submit(q));
    }
    futures.push_back(broker.submit(CentralityQuery{}));
    broker.flush();
  }
  for (auto& f : futures) f.get();
  std::cout << broker.stats().json("serve_stats") << "\n";
}

/// `bench_serve --smoke`: one deterministic traced serving run. Installs
/// a TraceSink, drives a mixed workload at threads=1 (every span lands
/// on one tid, fully nested admission -> plan -> kernel -> cache),
/// cross-checks ServeStats against the broker's registry snapshot
/// value-for-value, and writes the Chrome trace JSON to the path in
/// $STRUCTNET_TRACE_OUT (when set). Returns a process exit code.
int traced_smoke() {
  obs::TraceSink sink;
  sink.install();
  int rc = 0;
  {
    ServeFixture fx;
    BrokerConfig cfg;
    cfg.threads = 1;
    cfg.deterministic = true;
    QueryBroker broker(fx.engine, &fx.view, cfg);
    std::vector<std::future<QueryResult>> futures;
    for (std::size_t round = 0; round < 3; ++round) {
      for (const Query& q : distinct_temporal_queries(64)) {
        futures.push_back(broker.submit(q));
      }
      futures.push_back(broker.submit(CentralityQuery{}));
      broker.flush();
    }
    for (auto& f : futures) f.get();

    const ServeStats stats = broker.stats();
    const obs::MetricsRegistry::Snapshot snap = broker.metrics().snapshot();
    const auto check = [&](std::string_view name, std::uint64_t legacy) {
      const std::uint64_t reg = snap.counter_value(name);
      if (reg != legacy) {
        std::cerr << "smoke: registry/" << name << " = " << reg
                  << " but ServeStats says " << legacy << "\n";
        rc = 1;
      }
    };
    check("serve.submitted", stats.submitted);
    check("serve.admitted", stats.admitted);
    check("serve.shed_queue_full", stats.shed_queue_full);
    check("serve.rejected_invalid", stats.rejected_invalid);
    check("serve.timed_out", stats.timed_out);
    check("serve.executed", stats.executed);
    check("serve.batches", stats.batches);
    check("serve.csr_builds", stats.csr_builds);
    check("serve.csr_reuses", stats.csr_reuses);
    check("serve.csr_delta_appends", stats.csr_delta_appends);
    check("serve.csr_compactions", stats.csr_compactions);
    check("serve.cache.hits", stats.cache_hits);
    check("serve.cache.misses", stats.cache_misses);
    check("serve.cache.evictions", stats.cache_evictions);
    check("serve.cache.invalidations", stats.cache_invalidations);
    if (static_cast<std::int64_t>(stats.cache_bytes) !=
        snap.gauge_value("serve.cache.bytes")) {
      std::cerr << "smoke: cache byte gauge disagrees with ServeStats\n";
      rc = 1;
    }
    std::cout << stats.json("serve_smoke") << "\n";
    broker.metrics().emit_json(std::cout, "serve_smoke");
  }
  obs::TraceSink::uninstall();

  if (const char* path = std::getenv("STRUCTNET_TRACE_OUT")) {
    std::ofstream out(path);
    out << sink.chrome_trace_json() << "\n";
    if (!out) {
      std::cerr << "smoke: failed writing trace to " << path << "\n";
      rc = 1;
    }
  }
  std::cout << "smoke: trace_events=" << sink.size()
            << " dropped=" << sink.dropped() << "\n";
  for (const obs::SpanStats& s : sink.aggregate()) {
    BenchJson("serve_smoke_span")
        .field("name", s.name)
        .field("count", s.count)
        .field("total_us", static_cast<double>(s.total_ns) / 1e3)
        .field("max_us", static_cast<double>(s.max_ns) / 1e3)
        .threads(1)
        .emit();
  }
  if (obs::kEnabled && sink.size() == 0) {
    std::cerr << "smoke: tracing compiled in but no spans were recorded\n";
    rc = 1;
  }
  return rc;
}

void BM_ServeSubmitFlushTemporal(benchmark::State& state) {
  ServeFixture fx;
  BrokerConfig cfg;
  cfg.threads = 1;
  cfg.cache_bytes = 0;
  QueryBroker broker(fx.engine, &fx.view, cfg);
  Rng rng(3);
  for (auto _ : state) {
    auto f = broker.submit(TemporalDistancesQuery{
        static_cast<VertexId>(rng.index(kNodes)), 0});
    broker.flush();
    benchmark::DoNotOptimize(f.get());
  }
}
BENCHMARK(BM_ServeSubmitFlushTemporal);

void BM_ServeCachedHit(benchmark::State& state) {
  ServeFixture fx;
  BrokerConfig cfg;
  cfg.threads = 1;
  QueryBroker broker(fx.engine, &fx.view, cfg);
  auto warm = broker.submit(TemporalDistancesQuery{0, 0});
  broker.flush();
  (void)warm.get();
  for (auto _ : state) {
    auto f = broker.submit(TemporalDistancesQuery{0, 0});
    broker.flush();
    benchmark::DoNotOptimize(f.get());
  }
}
BENCHMARK(BM_ServeCachedHit);

}  // namespace
}  // namespace structnet

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      // Traced smoke only: deterministic, single-threaded, no tables.
      const int rc = structnet::traced_smoke();
      structnet::obs::emit_json(std::cout);
      return rc;
    }
  }
  structnet::cache_speedup_table();
  structnet::throughput_table();
  structnet::shed_rate_table();
  structnet::churn_serving_table();
  structnet::lane_pack_table();
  structnet::serve_stats_smoke();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  structnet::obs::emit_json(std::cout);
  return 0;
}
