#!/usr/bin/env bash
# Record benchmark results: run the Release temporal + multi-source +
# serving benches and append their machine-readable JSON lines, stamped
# with the date and commit, to BENCH_temporal.json,
# BENCH_multi_source.json and BENCH_serve.json at the repo root (one
# JSON object per line, append-only history). Diff any two recordings
# with scripts/bench_compare.py.
#
#   scripts/bench_record.sh            # build, run, append both files
#   SKIP_BUILD=1 scripts/bench_record.sh   # reuse existing build-bench
set -euo pipefail
cd "$(dirname "$0")/.."

jobs="$(nproc 2>/dev/null || echo 4)"

if [[ "${SKIP_BUILD:-0}" != "1" ]]; then
  cmake -B build-bench -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
  cmake --build build-bench -j"$jobs" \
    --target bench_temporal_paths bench_multi_source bench_serve
fi

stamp="$(date -u +%Y-%m-%dT%H:%M:%SZ)"
commit="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"

record() {
  local bin="$1" out="$2"
  # The no-match filter skips registered google-benchmark loops; the
  # experiment tables (the JSON source) always run.
  ./build-bench/bench/"$bin" --benchmark_filter='^structnet_smoke_none$' \
    2>/dev/null |
    python3 -c '
import json, sys
stamp, commit = sys.argv[1], sys.argv[2]
n = 0
for line in sys.stdin:
    line = line.strip()
    if not line.startswith("{"):
        continue
    rec = json.loads(line)
    rec["date"] = stamp
    rec["commit"] = commit
    print(json.dumps(rec))
    n += 1
if n == 0:
    sys.exit("no BENCH JSON lines from bench run")
' "$stamp" "$commit" >>"$out"
  echo "bench_record: appended $(grep -c "\"date\": \"$stamp\"" "$out") \
lines from $bin to $out"
}

record bench_temporal_paths BENCH_temporal.json
record bench_multi_source BENCH_multi_source.json
record bench_serve BENCH_serve.json
echo "bench_record: OK ($stamp, $commit)"
