#!/usr/bin/env bash
# Tier-1 verify plus sanitizer passes: ASan/UBSan over the streaming
# churn tests, then TSan over the parallel-layer and stream tests.
#
#   scripts/check.sh          # plain build + full ctest, then ASan/UBSan + TSan
#   SKIP_SANITIZE=1 scripts/check.sh   # tier-1 only
set -euo pipefail
cd "$(dirname "$0")/.."

jobs="$(nproc 2>/dev/null || echo 4)"

echo "== tier-1: configure + build + ctest =="
cmake -B build -S . >/dev/null
cmake --build build -j"$jobs"
ctest --test-dir build --output-on-failure -j"$jobs"

if [[ "${SKIP_SANITIZE:-0}" != "1" ]]; then
  echo "== sanitizer pass (ASan + UBSan): streaming churn tests =="
  cmake -B build-asan -S . -DSTRUCTNET_SANITIZE=ON >/dev/null
  cmake --build build-asan -j"$jobs"
  ctest --test-dir build-asan --output-on-failure -j"$jobs" \
    -R 'DynamicGraph|StreamEngine|StreamChurn|CoreObserver|MisObserver|TemporalViewObserver|Replay'

  echo "== sanitizer pass (TSan): parallel + stream tests =="
  cmake -B build-tsan -S . -DSTRUCTNET_SANITIZE=thread >/dev/null
  cmake --build build-tsan -j"$jobs"
  ctest --test-dir build-tsan --output-on-failure -j"$jobs" \
    -R 'ThreadPool|Parallel|DynamicGraph|StreamEngine|StreamChurn'
fi

echo "check.sh: OK"
