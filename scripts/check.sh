#!/usr/bin/env bash
# Tier-1 verify plus sanitizer passes: ASan/UBSan over the streaming
# churn tests, then TSan over the parallel-layer and stream tests.
#
#   scripts/check.sh          # plain build + full ctest, then ASan/UBSan + TSan
#   SKIP_SANITIZE=1 scripts/check.sh   # skip the sanitizer passes
#   SKIP_BENCH=1 scripts/check.sh      # skip the Release bench smoke
#   SKIP_OBS_OFF=1 scripts/check.sh    # skip the STRUCTNET_OBS=OFF build
set -euo pipefail
cd "$(dirname "$0")/.."

jobs="$(nproc 2>/dev/null || echo 4)"

echo "== tier-1: configure + build + ctest =="
cmake -B build -S . >/dev/null
cmake --build build -j"$jobs"
ctest --test-dir build --output-on-failure -j"$jobs"

if [[ "${SKIP_SANITIZE:-0}" != "1" ]]; then
  echo "== sanitizer pass (ASan + UBSan): streaming churn tests =="
  cmake -B build-asan -S . -DSTRUCTNET_SANITIZE=ON >/dev/null
  cmake --build build-asan -j"$jobs"
  ctest --test-dir build-asan --output-on-failure -j"$jobs" \
    -R 'DynamicGraph|StreamEngine|StreamChurn|CoreObserver|MisObserver|TemporalViewObserver|TemporalDelta|DeltaCsrObserver|MultiSource|Replay|FaultPlan|FaultRouting|Checkpoint|CheckpointFile|CrashRecovery|Wal|WalCrashMatrix|Percolation|ResultCache|QueryBroker|ServeChurn|ServeStats|LatencyHistogram|HealthMonitor|ObsCounter|ObsGauge|ObsHistogram|ObsQuantile|ObsRegistry|ObsTrace'

  echo "== sanitizer pass (TSan): parallel + stream + serve + obs tests =="
  cmake -B build-tsan -S . -DSTRUCTNET_SANITIZE=thread >/dev/null
  cmake --build build-tsan -j"$jobs"
  ctest --test-dir build-tsan --output-on-failure -j"$jobs" \
    -R 'ThreadPool|Parallel|DynamicGraph|StreamEngine|StreamChurn|TemporalDelta|DeltaCsrObserver|MultiSource|FaultRouting|Wal|QueryBroker|ServeChurn|HealthMonitor|ObsCounter|ObsRegistry|ObsTrace'
fi

if [[ "${SKIP_OBS_OFF:-0}" != "1" ]]; then
  echo "== STRUCTNET_OBS=OFF build: stubbed obs layer must stay green =="
  cmake -B build-obs-off -S . -DSTRUCTNET_OBS=OFF >/dev/null
  cmake --build build-obs-off -j"$jobs"
  ctest --test-dir build-obs-off --output-on-failure -j"$jobs" \
    -R 'ResultCache|QueryBroker|ServeChurn|ServeStats|LatencyHistogram|HealthMonitor|Wal|WalCrashMatrix|CheckpointFile|TemporalDelta|DeltaCsrObserver|MultiSource|ObsCounter|ObsGauge|ObsHistogram|ObsQuantile|ObsRegistry'
fi

if [[ "${SKIP_BENCH:-0}" != "1" ]]; then
  echo "== bench smoke (Release): every BENCH/METRICS JSON line must parse =="
  cmake -B build-bench -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
  cmake --build build-bench -j"$jobs" \
    --target bench_temporal_paths bench_small_world bench_faults bench_serve \
             bench_multi_source
  # The '^$'-style no-match filter skips the registered google-benchmark
  # loops but still runs each binary's experiment tables, which is where
  # the machine-readable JSON lines come from.
  # bench_faults doubles as the crash-recovery smoke: its --smoke mode
  # replays randomized churn streams through checkpoint/restore and
  # exits nonzero on any divergence, before emitting its BENCH JSON.
  # bench_serve's tables double as the serving smoke: cache on/off,
  # throughput vs load, and shed-rate sweeps all run before the JSON
  # validation below sees their lines.
  bench_out="$(mktemp -d)"
  for b in bench_temporal_paths bench_small_world bench_faults bench_serve \
           bench_multi_source; do
    extra=()
    [[ "$b" == bench_faults ]] && extra=(--smoke)
    ./build-bench/bench/"$b" "${extra[@]}" \
      --benchmark_filter='^structnet_smoke_none$' 2>/dev/null |
      tee "$bench_out/$b.out" |
      python3 -c '
import json, sys
name = sys.argv[1]
lines = [l.strip() for l in sys.stdin if l.startswith("{")]
if not lines:
    sys.exit(name + ": no BENCH JSON lines emitted")
for l in lines:
    rec = json.loads(l)
    if "bench" not in rec and "metrics" not in rec:
        sys.exit(name + ": JSON line missing bench/metrics key: " + l)
print(name + ": " + str(len(lines)) + " BENCH/METRICS JSON lines parse")
' "$b"
  done

  echo "== churn gate: delta planner amortizes CSR builds at >= 10x =="
  # Kernel-level: folding 1% churn into the delta overlay must beat a
  # full rebuild by >= 10x with bit-identical kernel results.
  # Serve-level: under a churn workload the delta broker's serve.csr_builds
  # stays bounded by 1 + compactions while serve.csr_delta_appends grows;
  # the legacy broker rebuilds every epoch.
  python3 - "$bench_out/bench_temporal_paths.out" "$bench_out/bench_serve.out" <<'PYEOF'
import json, sys

def recs(path):
    with open(path) as f:
        return [json.loads(l) for l in f if l.strip().startswith("{")]

churn = [r for r in recs(sys.argv[1])
         if r.get("bench") == "churn_index_maintenance"]
if not churn:
    sys.exit("churn gate: no churn_index_maintenance record")
c = churn[0]
if c["results_match"] != "yes":
    sys.exit("churn gate: delta kernels diverged from rebuilt CSR")
if c["speedup_vs_rebuild"] < 10.0:
    sys.exit("churn gate: planning speedup %.2fx < 10x"
             % c["speedup_vs_rebuild"])

serve = {r["impl"]: r for r in recs(sys.argv[2])
         if r.get("bench") == "serve_churn"}
d, l = serve.get("delta"), serve.get("legacy")
if d is None or l is None:
    sys.exit("churn gate: missing serve_churn delta/legacy records")
if d["results_match"] != "yes":
    sys.exit("churn gate: delta serving results diverged from legacy")
if d["csr_delta_appends"] == 0:
    sys.exit("churn gate: delta planner recorded no csr_delta_appends")
if d["csr_builds"] > 1 + d["csr_compactions"]:
    sys.exit("churn gate: csr_builds %d exceeds 1 + compactions %d"
             % (d["csr_builds"], d["csr_compactions"]))
if l["csr_builds"] <= d["csr_builds"]:
    sys.exit("churn gate: legacy builds %d not above delta builds %d"
             % (l["csr_builds"], d["csr_builds"]))
print("churn gate: %.1fx planning speedup; delta builds %d vs legacy %d, "
      "%d delta appends" % (c["speedup_vs_rebuild"], d["csr_builds"],
                            l["csr_builds"], d["csr_delta_appends"]))
PYEOF

  echo "== recovery gate: WAL crash matrix + throughput JSON shape =="
  # bench_faults --smoke already exited nonzero on any crash-matrix
  # divergence (it truncates the WAL at every record boundary plus
  # random byte offsets and asserts bit-identical recovered state,
  # including a corrupted-newest-checkpoint fallback); this gate
  # re-asserts the records it emitted so a silently-skipped matrix or a
  # malformed WAL-throughput table also fails the check.
  python3 - "$bench_out/bench_faults.out" <<'PYEOF'
import json, sys

def recs(path):
    with open(path) as f:
        return [json.loads(l) for l in f if l.strip().startswith("{")]

rows = recs(sys.argv[1])
matrix = [r for r in rows if r.get("bench") == "fault_wal_crash_matrix"]
if not matrix:
    sys.exit("recovery gate: no fault_wal_crash_matrix record")
m = matrix[0]
if m["passed"] != m["cuts"] or m["cuts"] < m["accepted"] + 1:
    sys.exit("recovery gate: crash matrix %d/%d cuts (accepted %d)"
             % (m["passed"], m["cuts"], m["accepted"]))

wal = [r for r in rows if r.get("bench") == "fault_wal"]
grid = {(r["group_commit"], r["fsync"]) for r in wal}
need = {(g, f) for g in (1, 64, 0) for f in (1.0, 0.0)}
if not need <= grid:
    sys.exit("recovery gate: WAL throughput grid incomplete: %s" % grid)
for r in wal:
    if r["events_per_sec"] <= 0 or r["events"] <= 0:
        sys.exit("recovery gate: degenerate WAL throughput row: %s" % r)

rec = {r["mode"]: r for r in rows if r.get("bench") == "fault_wal_recovery"}
if set(rec) != {"wal_only", "checkpointed"}:
    sys.exit("recovery gate: missing fault_wal_recovery modes: %s"
             % sorted(rec))
if rec["checkpointed"]["replayed"] >= rec["wal_only"]["replayed"]:
    sys.exit("recovery gate: checkpoint anchor did not shorten replay "
             "(%d vs %d)" % (rec["checkpointed"]["replayed"],
                             rec["wal_only"]["replayed"]))
print("recovery gate: crash matrix %d/%d cuts, WAL grid %d rows, "
      "replay %d -> %d events with a checkpoint anchor"
      % (m["passed"], m["cuts"], len(wal),
         rec["wal_only"]["replayed"], rec["checkpointed"]["replayed"]))
PYEOF

  echo "== multi-source gate: lane-packed sweeps match scalar at >= 4x =="
  # Every multi_source_sweep record must be bit-identical to the scalar
  # kernel (results_match) and the smoke instance must clear 4x single
  # thread; the serving-side lane packer must save sweeps that grow
  # with queue depth while staying payload-identical to the scalar
  # planner.
  python3 - "$bench_out/bench_multi_source.out" "$bench_out/bench_serve.out" <<'PYEOF'
import json, sys

def recs(path):
    with open(path) as f:
        return [json.loads(l) for l in f if l.strip().startswith("{")]

sweeps = {r["instance"]: r for r in recs(sys.argv[1])
          if r.get("bench") == "multi_source_sweep"}
if not {"smoke", "allpairs20k"} <= set(sweeps):
    sys.exit("multi-source gate: missing sweep instances: %s"
             % sorted(sweeps))
for name, r in sweeps.items():
    if r["results_match"] != "yes":
        sys.exit("multi-source gate: %s lanes diverged from scalar" % name)
if sweeps["smoke"]["speedup_vs_scalar"] < 4.0:
    sys.exit("multi-source gate: smoke speedup %.2fx < 4x"
             % sweeps["smoke"]["speedup_vs_scalar"])

packs = sorted((r for r in recs(sys.argv[2])
                if r.get("bench") == "serve_lane_pack"),
               key=lambda r: r["queued"])
if len(packs) < 2:
    sys.exit("multi-source gate: fewer than 2 serve_lane_pack rows")
for r in packs:
    if r["results_match"] != "yes":
        sys.exit("multi-source gate: packed serving payloads diverged "
                 "at queued=%d" % r["queued"])
    if r["sweeps_saved"] == 0:
        sys.exit("multi-source gate: no sweeps saved at queued=%d"
                 % r["queued"])
saved = [r["sweeps_saved"] for r in packs]
if saved != sorted(saved) or saved[0] == saved[-1]:
    sys.exit("multi-source gate: sweeps_saved not growing with depth: %s"
             % saved)
print("multi-source gate: smoke %.1fx, 20k %.1fx, serve saves %s sweeps"
      % (sweeps["smoke"]["speedup_vs_scalar"],
         sweeps["allpairs20k"]["speedup_vs_scalar"], saved))
PYEOF
  rm -rf "$bench_out"

  echo "== obs smoke: traced serving run must emit a valid Chrome trace =="
  # bench_serve --smoke installs a TraceSink, drives a deterministic
  # single-threaded workload, cross-checks ServeStats against the
  # broker registry (exits nonzero on any mismatch), and writes the
  # Chrome trace_event JSON to $STRUCTNET_TRACE_OUT.
  trace_out="$(mktemp)"
  STRUCTNET_TRACE_OUT="$trace_out" ./build-bench/bench/bench_serve --smoke |
    python3 -c '
import json, sys
lines = [l.strip() for l in sys.stdin if l.startswith("{")]
if not lines:
    sys.exit("bench_serve --smoke: no JSON lines emitted")
for l in lines:
    rec = json.loads(l)
    if "bench" not in rec and "metrics" not in rec:
        sys.exit("bench_serve --smoke: JSON line missing bench/metrics key: " + l)
print("bench_serve --smoke: " + str(len(lines)) + " JSON lines parse")
'
  python3 - "$trace_out" <<'PYEOF'
import json, sys
with open(sys.argv[1]) as f:
    trace = json.load(f)
events = trace["traceEvents"]
if not events:
    sys.exit("obs smoke: empty Chrome trace")
names = {e["name"] for e in events}
need = ["serve.flush", "serve.admission", "serve.plan",
        "serve.execute", "serve.cache"]
missing = [n for n in need if n not in names]
if missing:
    sys.exit("obs smoke: trace missing spans: " + ", ".join(missing))
if not any(n.startswith("serve.kernel.") for n in names):
    sys.exit("obs smoke: trace has no per-query kernel spans")
for e in events:
    for key in ("name", "ph", "pid", "tid", "ts", "dur"):
        if key not in e:
            sys.exit("obs smoke: trace event missing field " + key)
print("obs smoke: %d trace events, %d span names, nesting OK"
      % (len(events), len(names)))
PYEOF
  rm -f "$trace_out"
fi

echo "check.sh: OK"
