#!/usr/bin/env bash
# Tier-1 verify plus a sanitizer pass over the streaming churn tests.
#
#   scripts/check.sh          # plain build + full ctest, then ASan/UBSan
#   SKIP_SANITIZE=1 scripts/check.sh   # tier-1 only
set -euo pipefail
cd "$(dirname "$0")/.."

jobs="$(nproc 2>/dev/null || echo 4)"

echo "== tier-1: configure + build + ctest =="
cmake -B build -S . >/dev/null
cmake --build build -j"$jobs"
ctest --test-dir build --output-on-failure -j"$jobs"

if [[ "${SKIP_SANITIZE:-0}" != "1" ]]; then
  echo "== sanitizer pass (ASan + UBSan): streaming churn tests =="
  cmake -B build-asan -S . -DSTRUCTNET_SANITIZE=ON >/dev/null
  cmake --build build-asan -j"$jobs"
  ctest --test-dir build-asan --output-on-failure -j"$jobs" \
    -R 'DynamicGraph|StreamEngine|StreamChurn|CoreObserver|MisObserver|TemporalViewObserver|Replay'
fi

echo "check.sh: OK"
