#!/usr/bin/env python3
"""Diff the latest two recordings in a BENCH_*.json history file.

bench_record.sh appends one JSON object per line, every line stamped
with the recording's "date" and "commit".  This tool groups lines by
that stamp, takes the two most recent recordings, matches their rows
(by bench name plus every string-valued identity field such as
"instance" or "impl"), and compares one named numeric metric:

    scripts/bench_compare.py BENCH_multi_source.json \
        --metric speedup_vs_scalar
    scripts/bench_compare.py BENCH_serve.json \
        --metric packed_ns_per_query --bench serve_lane_pack

Exits nonzero when any matched row regressed by more than --threshold
percent (default 15).  Whether bigger is a regression is inferred from
the metric name (ns/us/latency/bytes => lower is better, anything else
=> higher is better); override with --direction.  Fewer than two
recordings is not an error -- there is nothing to compare yet.
"""
import argparse
import json
import sys


def load_recordings(path):
    """Returns the file's recordings as a list of row-lists, oldest
    first, grouped by the (date, commit) stamp bench_record.sh wrote."""
    recordings = []   # [(stamp, [row, ...])]
    by_stamp = {}
    with open(path) as f:
        for line in f:
            line = line.strip()
            if not line.startswith("{"):
                continue
            row = json.loads(line)
            stamp = (row.get("date", ""), row.get("commit", ""))
            if stamp not in by_stamp:
                by_stamp[stamp] = []
                recordings.append((stamp, by_stamp[stamp]))
            by_stamp[stamp].append(row)
    return recordings


def row_key(row):
    """Identity of a row across recordings: bench name plus every
    string field that is not the recording stamp."""
    return tuple(sorted((k, v) for k, v in row.items()
                        if isinstance(v, str) and k not in ("date", "commit")))


def lower_is_better(metric):
    metric = metric.lower()
    return any(tok in metric for tok in ("ns", "_us", "latency", "bytes"))


def main():
    ap = argparse.ArgumentParser(
        description="compare the latest two BENCH_*.json recordings")
    ap.add_argument("file", help="BENCH_*.json history file")
    ap.add_argument("--metric", required=True,
                    help="numeric field to compare, e.g. speedup_vs_scalar")
    ap.add_argument("--bench", default=None,
                    help="only rows whose \"bench\" equals this name")
    ap.add_argument("--threshold", type=float, default=15.0,
                    help="regression tolerance in percent (default 15)")
    ap.add_argument("--direction", choices=("higher", "lower"), default=None,
                    help="which way is better (default: inferred from name)")
    args = ap.parse_args()

    recordings = load_recordings(args.file)
    if len(recordings) < 2:
        print("bench_compare: %d recording(s) in %s, nothing to compare"
              % (len(recordings), args.file))
        return 0

    (old_stamp, old_rows), (new_stamp, new_rows) = recordings[-2:]
    want = lambda r: (r.get("metrics") is None and
                      (args.bench is None or r.get("bench") == args.bench) and
                      isinstance(r.get(args.metric), (int, float)))
    old = {row_key(r): r for r in old_rows if want(r)}
    new = {row_key(r): r for r in new_rows if want(r)}
    matched = sorted(set(old) & set(new))
    if not matched:
        print("bench_compare: no rows with metric %r match between "
              "%s and %s" % (args.metric, old_stamp[1], new_stamp[1]),
              file=sys.stderr)
        return 1

    higher_better = (args.direction == "higher" if args.direction
                     else not lower_is_better(args.metric))
    failed = 0
    for key in matched:
        before = float(old[key][args.metric])
        after = float(new[key][args.metric])
        if before == 0.0:
            change = 0.0
        elif higher_better:
            change = (before - after) / before * 100.0
        else:
            change = (after - before) / before * 100.0
        label = " ".join("%s=%s" % (k, v) for k, v in key) or args.metric
        verdict = "ok"
        if change > args.threshold:
            verdict = "REGRESSED"
            failed += 1
        print("bench_compare: %s %s: %g -> %g (%+.1f%% %s) %s"
              % (label, args.metric, before, after, change,
                 "worse" if change > 0 else "better-or-equal", verdict))
    print("bench_compare: %s vs %s, %d row(s), %d regression(s) over %.0f%%"
          % (old_stamp[1] or "?", new_stamp[1] or "?", len(matched),
             failed, args.threshold))
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
