// Small-world navigation (the paper's introductory success story,
// Kleinberg [2]): a localized algorithm — every node knows only its own
// links — finds short paths when long-range links follow the
// inverse-square law.
#include <iostream>

#include "remapping/small_world.hpp"
#include "util/table.hpp"

int main() {
  using namespace structnet;
  Rng rng(2026);
  const std::size_t side = 30;

  Table t({"long-range exponent r", "avg greedy hops", "sample route len"});
  for (double r : {0.0, 1.0, 2.0, 3.0}) {
    const SmallWorldLattice lattice(side, r, rng);
    Rng pick(5);
    const double avg = average_greedy_hops(lattice, 500, pick);
    const std::size_t sample = lattice.greedy_route_hops(0, side * side / 2);
    t.add_row({Table::num(r, 1), Table::num(avg, 2),
               Table::num(std::uint64_t(sample))});
  }
  t.print(std::cout,
          "Greedy navigation on a 30x30 small-world torus (1 long link "
          "per node)");

  // Show one route's distance profile: each greedy step strictly
  // approaches the target; long links produce the big drops.
  const SmallWorldLattice lattice(side, 2.0, rng);
  // Farthest point from vertex 0 on the torus: the antipode
  // (side/2, side/2).
  const VertexId target =
      static_cast<VertexId>((side / 2) * side + side / 2);
  VertexId cur = 0;
  std::cout << "\nOne r=2 route, lattice distance to target per hop:\n  ";
  while (cur != target) {
    std::cout << lattice.lattice_distance(cur, target) << " ";
    cur = lattice.greedy_next_hop(cur, target);
  }
  std::cout << "0\nEvery hop is chosen from the node's OWN links only — a "
               "localized solution exploiting a global structural law.\n";
  return 0;
}
