// Nested-scale-free pub/sub (the paper's Sec. III-B, NSFA [11] story):
// verify that a synthetic P2P overlay is NSF, label its hierarchy, and
// deliver publications by push-up / pull-down.
#include <iostream>

#include "core/generators.hpp"
#include "layering/nsf.hpp"
#include "layering/pubsub.hpp"
#include "util/table.hpp"

int main() {
  using namespace structnet;
  Rng rng(42);

  const Graph overlay = barabasi_albert(5000, 3, rng);
  std::cout << "P2P overlay (Gnutella stand-in): " << overlay.vertex_count()
            << " peers, " << overlay.edge_count() << " links\n\n";

  // Is it nested scale-free?
  const auto report = nsf_report(overlay, 0.5);
  Table nsf({"peel_round", "survivors", "alpha", "ks"});
  for (std::size_t r = 0; r < report.fits.size(); ++r) {
    nsf.add_row({Table::num(std::uint64_t(r)),
                 Table::num(std::uint64_t(report.sizes[r])),
                 Table::num(report.fits[r].alpha, 3),
                 Table::num(report.fits[r].ks, 3)});
  }
  nsf.print(std::cout, "NSF check (Fig. 3): exponents across peeling");
  std::cout << "exponent stddev = " << report.exponent_stddev
            << (report.all_scale_free ? "  -> NSF\n\n" : "  -> not NSF\n\n");

  // Hierarchy + pub/sub.
  const auto labeling = nsf_level_labels(overlay);
  const HierarchicalPubSub ps(overlay, labeling.level);
  std::cout << "Hierarchy: " << labeling.rounds << " levels, "
            << labeling.top_nodes().size() << " top node(s)\n\n";

  Table t({"publisher", "subscriber", "hops", "meeting_node"});
  double total_hops = 0;
  const int trials = 1000;
  Rng pick(7);
  for (int i = 0; i < trials; ++i) {
    const auto a = static_cast<VertexId>(pick.index(overlay.vertex_count()));
    const auto b = static_cast<VertexId>(pick.index(overlay.vertex_count()));
    const auto d = ps.deliver(a, b);
    total_hops += static_cast<double>(d.hops);
    if (i < 6) {
      t.add_row({Table::num(std::uint64_t(a)), Table::num(std::uint64_t(b)),
                 Table::num(std::uint64_t(d.hops)),
                 d.meeting_node == kInvalidVertex
                     ? "external server"
                     : Table::num(std::uint64_t(d.meeting_node))});
    }
  }
  t.print(std::cout, "Sample deliveries (push up, pull down)");
  std::cout << "\nAverage hops: " << total_hops / trials
            << " vs flooding cost " << ps.flooding_cost() << " messages\n";
  return 0;
}
