// Query serving scenario: a live engine under churn, answered through
// the QueryBroker — batched execution, epoch-keyed result caching, and
// typed admission control, all against one consistent epoch per batch.
//
// Pipeline: StreamEngine + temporal view -> QueryBroker -> interleaved
// updates and queries -> serving metrics.
#include <chrono>
#include <iostream>
#include <vector>

#include "serve/broker.hpp"
#include "serve/query.hpp"
#include "stream/engine.hpp"
#include "stream/observers.hpp"
#include "util/rng.hpp"

int main() {
  using namespace structnet;
  Rng rng(2024);

  // A 64-node dynamic network whose temporal view keeps a 32-unit
  // contact horizon.
  const std::size_t nodes = 64;
  const TimeUnit horizon = 32;
  StreamEngine engine{DynamicGraph(nodes)};
  TemporalViewObserver view(nodes, horizon);
  engine.attach(&view);

  QueryBroker broker(engine, &view);

  // Helper: one round of random churn routed through the broker, so
  // updates serialize with query batches (and bump the graph epoch,
  // invalidating stale cache entries automatically).
  const auto churn = [&](std::size_t events) {
    std::vector<Event> batch;
    for (std::size_t i = 0; i < events; ++i) {
      const auto u = static_cast<VertexId>(rng.index(nodes));
      const auto v = static_cast<VertexId>(rng.index(nodes));
      if (rng.uniform01() < 0.4) {
        batch.push_back(Event::edge_insert(u, v));
      } else {
        batch.push_back(Event::contact_add(
            u, v, static_cast<TimeUnit>(rng.index(horizon))));
      }
    }
    broker.apply_events(batch);
  };
  churn(500);

  // --- 1. A batch of mixed queries at one epoch -----------------------
  auto distances = broker.submit(TemporalDistancesQuery{0, 0});
  auto journey = broker.submit(FastestJourneyQuery{0, 42, 0});
  auto degree = broker.submit(CentralityQuery{CentralityMeasure::kDegree});
  broker.flush();  // ONE contact index + ONE materialized graph serve all

  const QueryResult d = distances.get();
  std::cout << "temporal distances from node 0 (epoch " << d.epoch << "): "
            << std::get<std::vector<TimeUnit>>(d.payload).size()
            << " entries\n";
  if (const auto& j = std::get<std::optional<Journey>>(journey.get().payload)) {
    std::cout << "fastest journey 0 -> 42: " << j->hop_count()
              << " hops, span " << j->span() << "\n";
  } else {
    std::cout << "fastest journey 0 -> 42: unreachable in this horizon\n";
  }
  std::cout << "degree centrality entries: "
            << std::get<std::vector<double>>(degree.get().payload).size()
            << "\n";

  // --- 2. Same epoch, same query: served from the result cache --------
  auto repeat = broker.submit(TemporalDistancesQuery{0, 0});
  broker.flush();
  std::cout << "repeat at same epoch from_cache="
            << repeat.get().from_cache << "\n";

  // --- 3. Churn invalidates; the next repeat recomputes ---------------
  churn(50);
  auto recomputed = broker.submit(TemporalDistancesQuery{0, 0});
  broker.flush();
  const QueryResult r = recomputed.get();
  std::cout << "repeat after churn from_cache=" << r.from_cache
            << " (epoch " << r.epoch << ")\n";

  // --- 4. Admission control: deadlines and typed rejections -----------
  SubmitOptions opt;
  opt.deadline = std::chrono::nanoseconds(1);  // already expired
  auto late = broker.submit(TemporalDistancesQuery{1, 0}, opt);
  auto bogus = broker.submit(TemporalDistancesQuery{nodes + 9, 0});
  broker.flush();
  std::cout << "expired deadline  -> " << to_string(late.get().status) << "\n"
            << "bad vertex id     -> " << to_string(bogus.get().cause) << "\n";

  // --- 5. Background dispatcher + serving metrics ---------------------
  broker.start();
  std::vector<std::future<QueryResult>> stream;
  for (std::size_t i = 0; i < 200; ++i) {
    stream.push_back(broker.submit(TemporalDistancesQuery{
        static_cast<VertexId>(i % nodes), static_cast<TimeUnit>(i % 4)}));
  }
  broker.stop();  // drains: every admitted query resolves
  for (auto& f : stream) (void)f.get();

  // Deterministic slice of the metrics surface (batch counts and
  // latency histograms depend on dispatcher timing; the full picture —
  // including the bench-JSON line from stats().json() — is one call
  // away).
  const ServeStats stats = broker.stats();
  std::cout << "\nserving metrics:\n"
            << "  submitted=" << stats.submitted
            << " admitted=" << stats.admitted
            << " executed=" << stats.executed << "\n"
            << "  shed=" << stats.shed_queue_full
            << " invalid=" << stats.rejected_invalid
            << " timed_out=" << stats.timed_out << "\n"
            << "  cache: hits=" << stats.cache_hits
            << " misses=" << stats.cache_misses
            << " invalidations=" << stats.cache_invalidations
            << " entries=" << stats.cache_entries << "\n"
            << "  amortization: csr_builds=" << stats.csr_builds
            << " graph_builds=" << stats.graph_builds << "\n";
  return 0;
}
