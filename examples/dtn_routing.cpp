// DTN routing scenario: a fleet of random-waypoint nodes (a VANET-like
// setting) exchanging a message via store-carry-forward.
//
// Pipeline: mobility model -> contact trace (time-evolving graph) ->
// trimming statistics -> routing strategy comparison on the same trace.
#include <iostream>

#include "mobility/contact_trace.hpp"
#include "mobility/mobility_models.hpp"
#include "sim/dtn_routing.hpp"
#include "temporal/journeys.hpp"
#include "trimming/eg_trimming.hpp"
#include "util/table.hpp"

int main() {
  using namespace structnet;
  Rng rng(2024);

  RandomWaypointParams params;
  params.nodes = 40;
  params.steps = 400;
  params.min_speed = 0.01;
  params.max_speed = 0.03;
  const auto trajectory = random_waypoint(params, rng);
  const TemporalGraph trace = contacts_from_trajectory(trajectory, 0.12);

  const auto stats = contact_statistics(trace);
  std::cout << "Random-waypoint trace: " << params.nodes << " nodes, "
            << params.steps << " steps\n"
            << "  pairs that ever met:      " << stats.pair_count << "\n"
            << "  mean contact duration:    " << stats.contact_duration.mean()
            << " units\n"
            << "  mean inter-contact time:  "
            << stats.inter_contact_time.mean() << " units\n\n";

  // Label trimming: how much of the trace is redundant?
  const auto trimmed = trim_labels(trace);
  std::size_t labels = 0;
  for (const auto& e : trace.edges()) labels += e.labels.size();
  std::cout << "Label trimming removed " << trimmed.removed_labels << " of "
            << labels << " contact labels without changing any earliest "
            << "completion time.\n\n";

  // Strategy comparison for 30 random source/destination pairs.
  Table t({"strategy", "delivered", "avg_delay", "avg_copies"});
  struct Acc {
    std::size_t delivered = 0;
    double delay = 0.0;
    double copies = 0.0;
  };
  const std::vector<std::pair<std::string, std::pair<Strategy, std::size_t>>>
      strategies{
          {"direct", {direct_strategy(), 1}},
          {"epidemic", {epidemic_strategy(), 0}},
          {"spray&wait(L=8)", {spray_and_wait_strategy(), 8}},
      };
  for (const auto& [name, sc] : strategies) {
    Acc acc;
    Rng pick(7);
    int total = 0;
    for (int trial = 0; trial < 30; ++trial) {
      const auto s = static_cast<VertexId>(pick.index(params.nodes));
      const auto d = static_cast<VertexId>(pick.index(params.nodes));
      if (s == d) continue;
      ++total;
      const auto r = simulate_routing(trace, s, d, 0, sc.first, sc.second);
      if (r.delivered) {
        ++acc.delivered;
        acc.delay += static_cast<double>(r.delivery_time);
        acc.copies += static_cast<double>(r.copies);
      }
    }
    t.add_row({name,
               Table::num(double(acc.delivered) / double(total), 2),
               Table::num(acc.delay / std::max<std::size_t>(acc.delivered, 1),
                          1),
               Table::num(acc.copies / std::max<std::size_t>(acc.delivered, 1),
                          1)});
  }
  t.print(std::cout, "Routing strategies on the same contact trace");
  return 0;
}
