// Fault-tolerant hypercube routing with safety levels (Sec. IV-C,
// Wu '95): label a faulty 6-cube in <= 5 rounds, then unicast and
// broadcast around the faults without routing tables.
#include <iostream>

#include "labeling/safety_levels.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

int main() {
  using namespace structnet;
  Rng rng(3);

  const std::size_t dims = 6;
  std::vector<std::size_t> faulty;
  for (auto f : rng.sample_without_replacement(1u << dims, 7)) {
    faulty.push_back(f);
  }
  const SafetyLevelCube cube(dims, faulty);

  std::cout << dims << "-cube with " << faulty.size() << " faulty nodes; "
            << "safety labeling stabilized in " << cube.rounds_used()
            << " rounds (bound: " << dims - 1 << ")\n\n";

  Table hist({"safety_level", "nodes"});
  std::vector<std::size_t> count(dims + 1, 0);
  for (std::size_t v = 0; v < cube.node_count(); ++v) ++count[cube.level(v)];
  for (std::size_t l = 0; l <= dims; ++l) {
    hist.add_row({Table::num(std::uint64_t(l)),
                  Table::num(std::uint64_t(count[l]))});
  }
  hist.print(std::cout, "Safety level histogram (level n = safe)");

  // Unicast demos.
  Table t({"source", "dest", "hamming", "path_length", "optimal"});
  int shown = 0;
  for (std::size_t s = 0; s < cube.node_count() && shown < 6; s += 11) {
    const std::size_t d = (s * 29 + 17) % cube.node_count();
    if (cube.is_faulty(s) || cube.is_faulty(d) || s == d) continue;
    const auto path = cube.route(s, d);
    if (!path) continue;
    ++shown;
    const auto h = SafetyLevelCube::hamming(s, d);
    t.add_row({Table::num(std::uint64_t(s)), Table::num(std::uint64_t(d)),
               Table::num(std::uint64_t(h)),
               Table::num(std::uint64_t(path->size() - 1)),
               path->size() - 1 == h ? "yes" : "detour"});
  }
  t.print(std::cout, "Self-guided unicast (no routing tables)");

  // Broadcast from a safe node.
  for (std::size_t s = 0; s < cube.node_count(); ++s) {
    if (cube.level(s) == dims) {
      const auto b = cube.broadcast(s);
      std::size_t reached = 0, alive = 0;
      for (std::size_t v = 0; v < cube.node_count(); ++v) {
        if (!cube.is_faulty(v)) {
          ++alive;
          reached += b.reached[v];
        }
      }
      std::cout << "\nBroadcast from safe node " << s << ": reached "
                << reached << "/" << alive << " non-faulty nodes with "
                << b.messages << " messages\n";
      break;
    }
  }
  return 0;
}
