// Quickstart: the core structnet workflow in one file.
//
//   1. Build a time-evolving graph (the paper's Fig. 2 VANET).
//   2. Ask the three journey questions of Sec. II-B.
//   3. Trim the redundant link per Sec. III-A.
//   4. Label a static graph with DS / CDS / MIS colors (Sec. IV-A).
//
// Build & run:  ./quickstart
#include <iostream>

#include "labeling/fig8_example.hpp"
#include "labeling/static_labels.hpp"
#include "temporal/fig2_example.hpp"
#include "temporal/journeys.hpp"
#include "trimming/eg_trimming.hpp"

int main() {
  using namespace structnet;

  // --- 1. A time-evolving graph --------------------------------------
  const TemporalGraph eg = fig2::build_core();
  std::cout << "Fig. 2 time-evolving graph: " << eg.vertex_count()
            << " vertices, " << eg.edge_count() << " labeled edges, horizon "
            << eg.horizon() << "\n\n";

  // --- 2. Journeys ----------------------------------------------------
  const auto print_journey = [](const char* name, const Journey& j) {
    std::cout << "  " << name << ": ";
    for (const auto& hop : j.hops) {
      std::cout << char('A' + hop.from) << " -" << hop.t << "-> ";
    }
    std::cout << char('A' + j.hops.back().to) << "  (completion "
              << j.completion() << ", hops " << j.hop_count() << ", span "
              << j.span() << ")\n";
  };
  std::cout << "Journeys A -> C starting at time 0:\n";
  print_journey("earliest completion",
                *earliest_completion_journey(eg, fig2::A, fig2::C, 0));
  print_journey("minimum hop", *minimum_hop_journey(eg, fig2::A, fig2::C, 0));
  print_journey("fastest (min span)",
                *fastest_journey(eg, fig2::A, fig2::C, 0));

  // --- 3. Structural trimming -----------------------------------------
  const std::vector<double> priority{4, 3, 2, 1};  // p(A) > p(B) > ...
  std::cout << "\nTrimming rule (Sec. III-A): can A ignore neighbor D?  "
            << (can_ignore_neighbor(eg, fig2::A, fig2::D, priority) ? "yes"
                                                                    : "no")
            << "\n";

  // --- 4. Static labels ------------------------------------------------
  const Graph g = fig8::build();
  const auto prio = id_priorities(g.vertex_count());
  const auto cds = trim_cds(g, marking_process(g), prio);
  const auto mis = distributed_mis(g, prio);
  std::cout << "\nFig. 8 static labels:\n  trimmed CDS = { ";
  for (VertexId v = 0; v < g.vertex_count(); ++v) {
    if (cds[v]) std::cout << char('A' + v) << ' ';
  }
  std::cout << "}\n  MIS (in " << mis.rounds << " rounds) = { ";
  for (VertexId v = 0; v < g.vertex_count(); ++v) {
    if (mis.in_mis[v]) std::cout << char('A' + v) << ' ';
  }
  std::cout << "}\n";
  return 0;
}
