// Streaming updates end-to-end: replay a mobility contact trace and an
// edge-Markovian churn sequence through the stream engine, let the
// observers maintain their structures incrementally, and query them —
// no from-scratch recomputation anywhere on the hot path.
#include <iostream>

#include "core/generators.hpp"
#include "layering/nsf.hpp"
#include "mobility/edge_markovian.hpp"
#include "mobility/mobility_models.hpp"
#include "stream/engine.hpp"
#include "stream/observers.hpp"
#include "stream/replay.hpp"

using namespace structnet;

int main() {
  Rng rng(2026);

  // --- 1. Structural churn: an edge-Markovian process as a diff stream.
  EdgeMarkovianParams churn;
  churn.nodes = 256;
  churn.horizon = 64;
  const TemporalGraph markovian = edge_markovian_graph(churn, rng);
  const auto structural = snapshot_edge_events(markovian);

  StreamEngine engine{DynamicGraph(churn.nodes)};
  CoreObserver cores(0.5);
  MisObserver mis(7);
  engine.attach(&cores);
  engine.attach(&mis);

  const ReplayStats s1 = replay(engine, structural, /*batch_size=*/64);
  std::cout << "edge-Markovian replay: " << s1.events << " events in "
            << s1.batches << " batches, " << s1.accepted << " accepted\n";

  const auto members = cores.nsf_members(engine.graph());
  std::size_t member_count = 0;
  for (const bool m : members) member_count += m;
  std::cout << "incremental core tracker: " << member_count << "/"
            << engine.graph().alive_count()
            << " vertices in the NSF core view (repair work: " << cores.work()
            << " touches over " << s1.accepted << " events)\n";

  std::size_t mis_size = 0;
  for (VertexId v = 0; v < engine.graph().vertex_count(); ++v) {
    mis_size += mis.in_mis(v);
  }
  std::cout << "incremental MIS: " << mis_size
            << " vertices, invariant holds: "
            << (mis.mis().verify() ? "yes" : "NO")
            << " (adjustments: " << mis.work() << ")\n";

  // O(1) snapshot handle: freeze the current epoch, keep streaming, and
  // the handle still materializes the frozen graph.
  const GraphSnapshot frozen = engine.graph().snapshot();
  engine.apply(Event::edge_insert(0, 1));
  engine.apply(Event::edge_delete(0, 1));
  std::cout << "snapshot at epoch " << frozen.epoch() << " still has "
            << frozen.materialize().edge_count() << " edges (live epoch "
            << engine.graph().epoch() << ")\n";

  // --- 2. Temporal view: a random-waypoint contact trace streamed in.
  RandomWaypointParams mob;
  mob.nodes = 96;
  mob.steps = 48;
  const auto trajectory = random_waypoint(mob, rng);
  const auto contacts = trajectory_events(trajectory, 0.08);

  StreamEngine temporal_engine{DynamicGraph(mob.nodes)};
  TemporalViewObserver view(mob.nodes, static_cast<TimeUnit>(mob.steps));
  temporal_engine.attach(&view);
  const ReplayStats s2 = replay(temporal_engine, contacts, 128);
  std::cout << "contact replay: " << s2.accepted << "/" << s2.events
            << " contacts into the temporal view ("
            << view.view().edge_count() << " labeled edges)\n";

  // The trimmed view is computed lazily, cached, and invalidated by the
  // next mutation.
  const TrimResult& trimmed = view.trimmed();
  std::cout << "lazy trimmed view: removed " << trimmed.removed_nodes.size()
            << " nodes (cache valid: "
            << (view.trim_cache_valid() ? "yes" : "no") << ")\n";
  temporal_engine.apply(Event::contact_add(0, 1, 0));
  std::cout << "after one more contact, cache valid: "
            << (view.trim_cache_valid() ? "yes" : "no") << "\n";
  return 0;
}
