// Social feature routing (the paper's Fig. 6 narrative, end to end):
//
//   1. A population with feature profiles (gender, occupation,
//      nationality) meets according to feature distance.
//   2. The F-space — a generalized hypercube over the profiles — is the
//      static structure "uncovered" from the mobile contact process.
//   3. Messages are routed in M-space by greedy descent on F-space
//      distance and compared against direct delivery.
#include <iostream>

#include "mobility/social_contacts.hpp"
#include "remapping/feature_space.hpp"
#include "sim/dtn_routing.hpp"
#include "util/table.hpp"

int main() {
  using namespace structnet;
  Rng rng(7);

  SocialTraceParams params;
  params.people = 60;
  params.horizon = 800;
  params.radices = {2, 2, 3};  // Fig. 6's cube
  params.base_rate = 0.15;
  params.decay = 0.3;
  const auto profiles = random_profiles(params.people, params.radices, rng);
  const auto trace = social_contact_trace(params, profiles, rng);

  // Uncover the structure: frequency by feature distance.
  const auto freq = contact_frequency_by_distance(trace, profiles);
  Table law({"feature_distance", "contacts_per_unit"});
  for (std::size_t d = 0; d < freq.size(); ++d) {
    law.add_row({Table::num(std::uint64_t(d)), Table::num(freq[d], 4)});
  }
  law.print(std::cout, "Uncovered law: contact frequency vs feature distance");

  const FeatureSpace fs(params.radices);
  std::cout << "\nF-space: generalized hypercube with " << fs.node_count()
            << " community nodes (people per community share all features)\n\n";

  // Route 50 messages: F-space greedy vs direct.
  Table t({"pair", "F-space delay", "direct delay", "F-space hops"});
  Rng pick(99);
  int shown = 0;
  double f_total = 0, d_total = 0;
  int both = 0;
  for (int trial = 0; trial < 200 && shown < 8; ++trial) {
    const auto s = static_cast<VertexId>(pick.index(params.people));
    const auto d = static_cast<VertexId>(pick.index(params.people));
    if (s == d || feature_distance(profiles[s], profiles[d]) < 2) continue;
    std::vector<double> metric(params.people);
    for (VertexId v = 0; v < params.people; ++v) {
      metric[v] =
          static_cast<double>(feature_distance(profiles[v], profiles[d]));
    }
    const auto rf =
        simulate_routing(trace, s, d, 0, greedy_metric_strategy(metric));
    const auto rd = simulate_routing(trace, s, d, 0, direct_strategy());
    if (!rf.delivered || !rd.delivered) continue;
    ++both;
    f_total += rf.delivery_time;
    d_total += rd.delivery_time;
    ++shown;
    t.add_row({std::to_string(s) + "->" + std::to_string(d),
               Table::num(std::uint64_t(rf.delivery_time)),
               Table::num(std::uint64_t(rd.delivery_time)),
               Table::num(std::uint64_t(rf.hops))});
  }
  t.print(std::cout, "Sample deliveries (single copy both ways)");
  std::cout << "\nAverage delay over " << both
            << " pairs: F-space greedy = " << f_total / both
            << ", direct = " << d_total / both << "\n";
  return 0;
}
