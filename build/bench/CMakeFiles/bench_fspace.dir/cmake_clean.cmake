file(REMOVE_RECURSE
  "CMakeFiles/bench_fspace.dir/bench_fspace.cpp.o"
  "CMakeFiles/bench_fspace.dir/bench_fspace.cpp.o.d"
  "bench_fspace"
  "bench_fspace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fspace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
