# Empty compiler generated dependencies file for bench_fspace.
# This may be replaced when dependencies are built.
