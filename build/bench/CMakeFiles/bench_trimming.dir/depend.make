# Empty dependencies file for bench_trimming.
# This may be replaced when dependencies are built.
