# Empty compiler generated dependencies file for bench_nsf.
# This may be replaced when dependencies are built.
