file(REMOVE_RECURSE
  "CMakeFiles/bench_nsf.dir/bench_nsf.cpp.o"
  "CMakeFiles/bench_nsf.dir/bench_nsf.cpp.o.d"
  "bench_nsf"
  "bench_nsf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_nsf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
