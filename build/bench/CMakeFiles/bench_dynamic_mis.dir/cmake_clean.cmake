file(REMOVE_RECURSE
  "CMakeFiles/bench_dynamic_mis.dir/bench_dynamic_mis.cpp.o"
  "CMakeFiles/bench_dynamic_mis.dir/bench_dynamic_mis.cpp.o.d"
  "bench_dynamic_mis"
  "bench_dynamic_mis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dynamic_mis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
