# Empty dependencies file for bench_dynamic_mis.
# This may be replaced when dependencies are built.
