file(REMOVE_RECURSE
  "CMakeFiles/bench_greedy_remap.dir/bench_greedy_remap.cpp.o"
  "CMakeFiles/bench_greedy_remap.dir/bench_greedy_remap.cpp.o.d"
  "bench_greedy_remap"
  "bench_greedy_remap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_greedy_remap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
