# Empty compiler generated dependencies file for bench_greedy_remap.
# This may be replaced when dependencies are built.
