# Empty compiler generated dependencies file for bench_temporal_paths.
# This may be replaced when dependencies are built.
