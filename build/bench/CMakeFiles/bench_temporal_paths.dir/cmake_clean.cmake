file(REMOVE_RECURSE
  "CMakeFiles/bench_temporal_paths.dir/bench_temporal_paths.cpp.o"
  "CMakeFiles/bench_temporal_paths.dir/bench_temporal_paths.cpp.o.d"
  "bench_temporal_paths"
  "bench_temporal_paths.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_temporal_paths.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
