# Empty dependencies file for bench_small_world.
# This may be replaced when dependencies are built.
