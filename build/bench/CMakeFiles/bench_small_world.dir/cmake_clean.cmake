file(REMOVE_RECURSE
  "CMakeFiles/bench_small_world.dir/bench_small_world.cpp.o"
  "CMakeFiles/bench_small_world.dir/bench_small_world.cpp.o.d"
  "bench_small_world"
  "bench_small_world.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_small_world.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
