file(REMOVE_RECURSE
  "CMakeFiles/bench_dynamic_labels.dir/bench_dynamic_labels.cpp.o"
  "CMakeFiles/bench_dynamic_labels.dir/bench_dynamic_labels.cpp.o.d"
  "bench_dynamic_labels"
  "bench_dynamic_labels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dynamic_labels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
