# Empty dependencies file for bench_dynamic_labels.
# This may be replaced when dependencies are built.
