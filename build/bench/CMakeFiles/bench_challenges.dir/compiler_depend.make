# Empty compiler generated dependencies file for bench_challenges.
# This may be replaced when dependencies are built.
