file(REMOVE_RECURSE
  "CMakeFiles/bench_challenges.dir/bench_challenges.cpp.o"
  "CMakeFiles/bench_challenges.dir/bench_challenges.cpp.o.d"
  "bench_challenges"
  "bench_challenges.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_challenges.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
