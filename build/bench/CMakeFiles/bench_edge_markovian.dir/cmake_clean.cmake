file(REMOVE_RECURSE
  "CMakeFiles/bench_edge_markovian.dir/bench_edge_markovian.cpp.o"
  "CMakeFiles/bench_edge_markovian.dir/bench_edge_markovian.cpp.o.d"
  "bench_edge_markovian"
  "bench_edge_markovian.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_edge_markovian.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
