# Empty dependencies file for bench_edge_markovian.
# This may be replaced when dependencies are built.
