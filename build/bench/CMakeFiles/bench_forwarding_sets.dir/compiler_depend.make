# Empty compiler generated dependencies file for bench_forwarding_sets.
# This may be replaced when dependencies are built.
