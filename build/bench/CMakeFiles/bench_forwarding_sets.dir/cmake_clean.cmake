file(REMOVE_RECURSE
  "CMakeFiles/bench_forwarding_sets.dir/bench_forwarding_sets.cpp.o"
  "CMakeFiles/bench_forwarding_sets.dir/bench_forwarding_sets.cpp.o.d"
  "bench_forwarding_sets"
  "bench_forwarding_sets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_forwarding_sets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
