file(REMOVE_RECURSE
  "CMakeFiles/bench_link_reversal.dir/bench_link_reversal.cpp.o"
  "CMakeFiles/bench_link_reversal.dir/bench_link_reversal.cpp.o.d"
  "bench_link_reversal"
  "bench_link_reversal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_link_reversal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
