# Empty compiler generated dependencies file for bench_link_reversal.
# This may be replaced when dependencies are built.
