# Empty dependencies file for bench_safety_levels.
# This may be replaced when dependencies are built.
