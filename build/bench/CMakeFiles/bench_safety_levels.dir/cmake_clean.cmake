file(REMOVE_RECURSE
  "CMakeFiles/bench_safety_levels.dir/bench_safety_levels.cpp.o"
  "CMakeFiles/bench_safety_levels.dir/bench_safety_levels.cpp.o.d"
  "bench_safety_levels"
  "bench_safety_levels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_safety_levels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
