file(REMOVE_RECURSE
  "CMakeFiles/test_remapping.dir/test_remapping.cpp.o"
  "CMakeFiles/test_remapping.dir/test_remapping.cpp.o.d"
  "test_remapping"
  "test_remapping.pdb"
  "test_remapping[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_remapping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
