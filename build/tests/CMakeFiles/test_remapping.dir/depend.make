# Empty dependencies file for test_remapping.
# This may be replaced when dependencies are built.
