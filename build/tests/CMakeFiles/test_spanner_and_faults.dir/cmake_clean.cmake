file(REMOVE_RECURSE
  "CMakeFiles/test_spanner_and_faults.dir/test_spanner_and_faults.cpp.o"
  "CMakeFiles/test_spanner_and_faults.dir/test_spanner_and_faults.cpp.o.d"
  "test_spanner_and_faults"
  "test_spanner_and_faults.pdb"
  "test_spanner_and_faults[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spanner_and_faults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
