# Empty compiler generated dependencies file for test_spanner_and_faults.
# This may be replaced when dependencies are built.
