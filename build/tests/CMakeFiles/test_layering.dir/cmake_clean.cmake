file(REMOVE_RECURSE
  "CMakeFiles/test_layering.dir/test_layering.cpp.o"
  "CMakeFiles/test_layering.dir/test_layering.cpp.o.d"
  "test_layering"
  "test_layering.pdb"
  "test_layering[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_layering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
