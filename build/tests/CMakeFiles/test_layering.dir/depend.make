# Empty dependencies file for test_layering.
# This may be replaced when dependencies are built.
