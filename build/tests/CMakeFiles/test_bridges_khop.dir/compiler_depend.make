# Empty compiler generated dependencies file for test_bridges_khop.
# This may be replaced when dependencies are built.
