file(REMOVE_RECURSE
  "CMakeFiles/test_bridges_khop.dir/test_bridges_khop.cpp.o"
  "CMakeFiles/test_bridges_khop.dir/test_bridges_khop.cpp.o.d"
  "test_bridges_khop"
  "test_bridges_khop.pdb"
  "test_bridges_khop[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bridges_khop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
