file(REMOVE_RECURSE
  "CMakeFiles/test_intersection.dir/test_intersection.cpp.o"
  "CMakeFiles/test_intersection.dir/test_intersection.cpp.o.d"
  "test_intersection"
  "test_intersection.pdb"
  "test_intersection[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_intersection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
