file(REMOVE_RECURSE
  "CMakeFiles/test_journey_oracle.dir/test_journey_oracle.cpp.o"
  "CMakeFiles/test_journey_oracle.dir/test_journey_oracle.cpp.o.d"
  "test_journey_oracle"
  "test_journey_oracle.pdb"
  "test_journey_oracle[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_journey_oracle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
