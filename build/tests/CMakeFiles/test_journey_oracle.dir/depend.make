# Empty dependencies file for test_journey_oracle.
# This may be replaced when dependencies are built.
