# Empty compiler generated dependencies file for test_mis_cds.
# This may be replaced when dependencies are built.
