
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_mis_cds.cpp" "tests/CMakeFiles/test_mis_cds.dir/test_mis_cds.cpp.o" "gcc" "tests/CMakeFiles/test_mis_cds.dir/test_mis_cds.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/labeling/CMakeFiles/structnet_labeling.dir/DependInfo.cmake"
  "/root/repo/build/src/algo/CMakeFiles/structnet_algo.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/structnet_core.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/structnet_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
