file(REMOVE_RECURSE
  "CMakeFiles/test_mis_cds.dir/test_mis_cds.cpp.o"
  "CMakeFiles/test_mis_cds.dir/test_mis_cds.cpp.o.d"
  "test_mis_cds"
  "test_mis_cds.pdb"
  "test_mis_cds[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mis_cds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
