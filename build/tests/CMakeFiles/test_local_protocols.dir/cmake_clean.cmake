file(REMOVE_RECURSE
  "CMakeFiles/test_local_protocols.dir/test_local_protocols.cpp.o"
  "CMakeFiles/test_local_protocols.dir/test_local_protocols.cpp.o.d"
  "test_local_protocols"
  "test_local_protocols.pdb"
  "test_local_protocols[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_local_protocols.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
