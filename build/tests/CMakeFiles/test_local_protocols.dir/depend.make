# Empty dependencies file for test_local_protocols.
# This may be replaced when dependencies are built.
