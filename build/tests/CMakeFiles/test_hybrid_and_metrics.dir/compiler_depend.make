# Empty compiler generated dependencies file for test_hybrid_and_metrics.
# This may be replaced when dependencies are built.
