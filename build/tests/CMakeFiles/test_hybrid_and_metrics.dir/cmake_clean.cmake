file(REMOVE_RECURSE
  "CMakeFiles/test_hybrid_and_metrics.dir/test_hybrid_and_metrics.cpp.o"
  "CMakeFiles/test_hybrid_and_metrics.dir/test_hybrid_and_metrics.cpp.o.d"
  "test_hybrid_and_metrics"
  "test_hybrid_and_metrics.pdb"
  "test_hybrid_and_metrics[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hybrid_and_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
