file(REMOVE_RECURSE
  "CMakeFiles/test_small_world.dir/test_small_world.cpp.o"
  "CMakeFiles/test_small_world.dir/test_small_world.cpp.o.d"
  "test_small_world"
  "test_small_world.pdb"
  "test_small_world[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_small_world.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
