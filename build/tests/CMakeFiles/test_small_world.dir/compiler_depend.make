# Empty compiler generated dependencies file for test_small_world.
# This may be replaced when dependencies are built.
