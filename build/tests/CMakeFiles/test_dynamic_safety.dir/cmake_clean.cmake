file(REMOVE_RECURSE
  "CMakeFiles/test_dynamic_safety.dir/test_dynamic_safety.cpp.o"
  "CMakeFiles/test_dynamic_safety.dir/test_dynamic_safety.cpp.o.d"
  "test_dynamic_safety"
  "test_dynamic_safety.pdb"
  "test_dynamic_safety[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dynamic_safety.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
