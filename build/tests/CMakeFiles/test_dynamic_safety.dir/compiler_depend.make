# Empty compiler generated dependencies file for test_dynamic_safety.
# This may be replaced when dependencies are built.
