# Empty compiler generated dependencies file for test_trimming.
# This may be replaced when dependencies are built.
