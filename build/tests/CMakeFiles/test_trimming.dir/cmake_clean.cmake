file(REMOVE_RECURSE
  "CMakeFiles/test_trimming.dir/test_trimming.cpp.o"
  "CMakeFiles/test_trimming.dir/test_trimming.cpp.o.d"
  "test_trimming"
  "test_trimming.pdb"
  "test_trimming[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trimming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
