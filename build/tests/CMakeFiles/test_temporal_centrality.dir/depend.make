# Empty dependencies file for test_temporal_centrality.
# This may be replaced when dependencies are built.
