file(REMOVE_RECURSE
  "CMakeFiles/test_temporal_centrality.dir/test_temporal_centrality.cpp.o"
  "CMakeFiles/test_temporal_centrality.dir/test_temporal_centrality.cpp.o.d"
  "test_temporal_centrality"
  "test_temporal_centrality.pdb"
  "test_temporal_centrality[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_temporal_centrality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
