# Empty dependencies file for test_weighted_temporal.
# This may be replaced when dependencies are built.
