file(REMOVE_RECURSE
  "CMakeFiles/test_weighted_temporal.dir/test_weighted_temporal.cpp.o"
  "CMakeFiles/test_weighted_temporal.dir/test_weighted_temporal.cpp.o.d"
  "test_weighted_temporal"
  "test_weighted_temporal.pdb"
  "test_weighted_temporal[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_weighted_temporal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
