# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_algo[1]_include.cmake")
include("/root/repo/build/tests/test_centrality[1]_include.cmake")
include("/root/repo/build/tests/test_intersection[1]_include.cmake")
include("/root/repo/build/tests/test_temporal[1]_include.cmake")
include("/root/repo/build/tests/test_weighted_temporal[1]_include.cmake")
include("/root/repo/build/tests/test_mobility[1]_include.cmake")
include("/root/repo/build/tests/test_trimming[1]_include.cmake")
include("/root/repo/build/tests/test_layering[1]_include.cmake")
include("/root/repo/build/tests/test_remapping[1]_include.cmake")
include("/root/repo/build/tests/test_small_world[1]_include.cmake")
include("/root/repo/build/tests/test_labeling[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_hybrid_and_metrics[1]_include.cmake")
include("/root/repo/build/tests/test_spanner_and_faults[1]_include.cmake")
include("/root/repo/build/tests/test_temporal_centrality[1]_include.cmake")
include("/root/repo/build/tests/test_multi_message[1]_include.cmake")
include("/root/repo/build/tests/test_journey_oracle[1]_include.cmake")
include("/root/repo/build/tests/test_local_protocols[1]_include.cmake")
include("/root/repo/build/tests/test_bridges_khop[1]_include.cmake")
include("/root/repo/build/tests/test_dynamic_safety[1]_include.cmake")
include("/root/repo/build/tests/test_coverage_extras[1]_include.cmake")
include("/root/repo/build/tests/test_properties2[1]_include.cmake")
include("/root/repo/build/tests/test_mis_cds[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
