file(REMOVE_RECURSE
  "CMakeFiles/p2p_pubsub_nsf.dir/p2p_pubsub_nsf.cpp.o"
  "CMakeFiles/p2p_pubsub_nsf.dir/p2p_pubsub_nsf.cpp.o.d"
  "p2p_pubsub_nsf"
  "p2p_pubsub_nsf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2p_pubsub_nsf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
