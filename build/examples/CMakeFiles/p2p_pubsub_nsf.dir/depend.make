# Empty dependencies file for p2p_pubsub_nsf.
# This may be replaced when dependencies are built.
