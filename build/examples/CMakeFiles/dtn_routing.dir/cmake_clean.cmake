file(REMOVE_RECURSE
  "CMakeFiles/dtn_routing.dir/dtn_routing.cpp.o"
  "CMakeFiles/dtn_routing.dir/dtn_routing.cpp.o.d"
  "dtn_routing"
  "dtn_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtn_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
