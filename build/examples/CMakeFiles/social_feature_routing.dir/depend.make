# Empty dependencies file for social_feature_routing.
# This may be replaced when dependencies are built.
