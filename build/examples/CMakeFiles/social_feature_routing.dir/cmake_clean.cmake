file(REMOVE_RECURSE
  "CMakeFiles/social_feature_routing.dir/social_feature_routing.cpp.o"
  "CMakeFiles/social_feature_routing.dir/social_feature_routing.cpp.o.d"
  "social_feature_routing"
  "social_feature_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/social_feature_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
