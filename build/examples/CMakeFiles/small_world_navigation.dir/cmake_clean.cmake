file(REMOVE_RECURSE
  "CMakeFiles/small_world_navigation.dir/small_world_navigation.cpp.o"
  "CMakeFiles/small_world_navigation.dir/small_world_navigation.cpp.o.d"
  "small_world_navigation"
  "small_world_navigation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/small_world_navigation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
