# Empty dependencies file for small_world_navigation.
# This may be replaced when dependencies are built.
