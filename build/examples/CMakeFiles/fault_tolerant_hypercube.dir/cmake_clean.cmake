file(REMOVE_RECURSE
  "CMakeFiles/fault_tolerant_hypercube.dir/fault_tolerant_hypercube.cpp.o"
  "CMakeFiles/fault_tolerant_hypercube.dir/fault_tolerant_hypercube.cpp.o.d"
  "fault_tolerant_hypercube"
  "fault_tolerant_hypercube.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fault_tolerant_hypercube.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
