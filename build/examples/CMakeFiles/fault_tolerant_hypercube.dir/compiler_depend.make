# Empty compiler generated dependencies file for fault_tolerant_hypercube.
# This may be replaced when dependencies are built.
