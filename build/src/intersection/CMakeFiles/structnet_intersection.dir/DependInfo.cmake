
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/intersection/interval_graph.cpp" "src/intersection/CMakeFiles/structnet_intersection.dir/interval_graph.cpp.o" "gcc" "src/intersection/CMakeFiles/structnet_intersection.dir/interval_graph.cpp.o.d"
  "/root/repo/src/intersection/interval_hypergraph.cpp" "src/intersection/CMakeFiles/structnet_intersection.dir/interval_hypergraph.cpp.o" "gcc" "src/intersection/CMakeFiles/structnet_intersection.dir/interval_hypergraph.cpp.o.d"
  "/root/repo/src/intersection/sessions.cpp" "src/intersection/CMakeFiles/structnet_intersection.dir/sessions.cpp.o" "gcc" "src/intersection/CMakeFiles/structnet_intersection.dir/sessions.cpp.o.d"
  "/root/repo/src/intersection/unit_disk.cpp" "src/intersection/CMakeFiles/structnet_intersection.dir/unit_disk.cpp.o" "gcc" "src/intersection/CMakeFiles/structnet_intersection.dir/unit_disk.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/structnet_core.dir/DependInfo.cmake"
  "/root/repo/build/src/algo/CMakeFiles/structnet_algo.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/structnet_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
