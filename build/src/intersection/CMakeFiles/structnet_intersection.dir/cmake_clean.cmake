file(REMOVE_RECURSE
  "CMakeFiles/structnet_intersection.dir/interval_graph.cpp.o"
  "CMakeFiles/structnet_intersection.dir/interval_graph.cpp.o.d"
  "CMakeFiles/structnet_intersection.dir/interval_hypergraph.cpp.o"
  "CMakeFiles/structnet_intersection.dir/interval_hypergraph.cpp.o.d"
  "CMakeFiles/structnet_intersection.dir/sessions.cpp.o"
  "CMakeFiles/structnet_intersection.dir/sessions.cpp.o.d"
  "CMakeFiles/structnet_intersection.dir/unit_disk.cpp.o"
  "CMakeFiles/structnet_intersection.dir/unit_disk.cpp.o.d"
  "libstructnet_intersection.a"
  "libstructnet_intersection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/structnet_intersection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
