# Empty dependencies file for structnet_intersection.
# This may be replaced when dependencies are built.
