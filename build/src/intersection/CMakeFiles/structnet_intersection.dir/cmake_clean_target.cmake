file(REMOVE_RECURSE
  "libstructnet_intersection.a"
)
