
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/layering/fig4_example.cpp" "src/layering/CMakeFiles/structnet_layering.dir/fig4_example.cpp.o" "gcc" "src/layering/CMakeFiles/structnet_layering.dir/fig4_example.cpp.o.d"
  "/root/repo/src/layering/link_reversal.cpp" "src/layering/CMakeFiles/structnet_layering.dir/link_reversal.cpp.o" "gcc" "src/layering/CMakeFiles/structnet_layering.dir/link_reversal.cpp.o.d"
  "/root/repo/src/layering/multi_dag.cpp" "src/layering/CMakeFiles/structnet_layering.dir/multi_dag.cpp.o" "gcc" "src/layering/CMakeFiles/structnet_layering.dir/multi_dag.cpp.o.d"
  "/root/repo/src/layering/nsf.cpp" "src/layering/CMakeFiles/structnet_layering.dir/nsf.cpp.o" "gcc" "src/layering/CMakeFiles/structnet_layering.dir/nsf.cpp.o.d"
  "/root/repo/src/layering/pubsub.cpp" "src/layering/CMakeFiles/structnet_layering.dir/pubsub.cpp.o" "gcc" "src/layering/CMakeFiles/structnet_layering.dir/pubsub.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/structnet_core.dir/DependInfo.cmake"
  "/root/repo/build/src/algo/CMakeFiles/structnet_algo.dir/DependInfo.cmake"
  "/root/repo/build/src/centrality/CMakeFiles/structnet_centrality.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/structnet_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
