file(REMOVE_RECURSE
  "libstructnet_layering.a"
)
