# Empty dependencies file for structnet_layering.
# This may be replaced when dependencies are built.
