file(REMOVE_RECURSE
  "CMakeFiles/structnet_layering.dir/fig4_example.cpp.o"
  "CMakeFiles/structnet_layering.dir/fig4_example.cpp.o.d"
  "CMakeFiles/structnet_layering.dir/link_reversal.cpp.o"
  "CMakeFiles/structnet_layering.dir/link_reversal.cpp.o.d"
  "CMakeFiles/structnet_layering.dir/multi_dag.cpp.o"
  "CMakeFiles/structnet_layering.dir/multi_dag.cpp.o.d"
  "CMakeFiles/structnet_layering.dir/nsf.cpp.o"
  "CMakeFiles/structnet_layering.dir/nsf.cpp.o.d"
  "CMakeFiles/structnet_layering.dir/pubsub.cpp.o"
  "CMakeFiles/structnet_layering.dir/pubsub.cpp.o.d"
  "libstructnet_layering.a"
  "libstructnet_layering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/structnet_layering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
