file(REMOVE_RECURSE
  "libstructnet_temporal.a"
)
