
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/temporal/fig2_example.cpp" "src/temporal/CMakeFiles/structnet_temporal.dir/fig2_example.cpp.o" "gcc" "src/temporal/CMakeFiles/structnet_temporal.dir/fig2_example.cpp.o.d"
  "/root/repo/src/temporal/journeys.cpp" "src/temporal/CMakeFiles/structnet_temporal.dir/journeys.cpp.o" "gcc" "src/temporal/CMakeFiles/structnet_temporal.dir/journeys.cpp.o.d"
  "/root/repo/src/temporal/smallworld_metrics.cpp" "src/temporal/CMakeFiles/structnet_temporal.dir/smallworld_metrics.cpp.o" "gcc" "src/temporal/CMakeFiles/structnet_temporal.dir/smallworld_metrics.cpp.o.d"
  "/root/repo/src/temporal/temporal_centrality.cpp" "src/temporal/CMakeFiles/structnet_temporal.dir/temporal_centrality.cpp.o" "gcc" "src/temporal/CMakeFiles/structnet_temporal.dir/temporal_centrality.cpp.o.d"
  "/root/repo/src/temporal/temporal_graph.cpp" "src/temporal/CMakeFiles/structnet_temporal.dir/temporal_graph.cpp.o" "gcc" "src/temporal/CMakeFiles/structnet_temporal.dir/temporal_graph.cpp.o.d"
  "/root/repo/src/temporal/trace_io.cpp" "src/temporal/CMakeFiles/structnet_temporal.dir/trace_io.cpp.o" "gcc" "src/temporal/CMakeFiles/structnet_temporal.dir/trace_io.cpp.o.d"
  "/root/repo/src/temporal/weighted.cpp" "src/temporal/CMakeFiles/structnet_temporal.dir/weighted.cpp.o" "gcc" "src/temporal/CMakeFiles/structnet_temporal.dir/weighted.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/structnet_core.dir/DependInfo.cmake"
  "/root/repo/build/src/algo/CMakeFiles/structnet_algo.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/structnet_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
