# Empty compiler generated dependencies file for structnet_temporal.
# This may be replaced when dependencies are built.
