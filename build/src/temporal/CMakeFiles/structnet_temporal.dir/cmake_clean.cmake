file(REMOVE_RECURSE
  "CMakeFiles/structnet_temporal.dir/fig2_example.cpp.o"
  "CMakeFiles/structnet_temporal.dir/fig2_example.cpp.o.d"
  "CMakeFiles/structnet_temporal.dir/journeys.cpp.o"
  "CMakeFiles/structnet_temporal.dir/journeys.cpp.o.d"
  "CMakeFiles/structnet_temporal.dir/smallworld_metrics.cpp.o"
  "CMakeFiles/structnet_temporal.dir/smallworld_metrics.cpp.o.d"
  "CMakeFiles/structnet_temporal.dir/temporal_centrality.cpp.o"
  "CMakeFiles/structnet_temporal.dir/temporal_centrality.cpp.o.d"
  "CMakeFiles/structnet_temporal.dir/temporal_graph.cpp.o"
  "CMakeFiles/structnet_temporal.dir/temporal_graph.cpp.o.d"
  "CMakeFiles/structnet_temporal.dir/trace_io.cpp.o"
  "CMakeFiles/structnet_temporal.dir/trace_io.cpp.o.d"
  "CMakeFiles/structnet_temporal.dir/weighted.cpp.o"
  "CMakeFiles/structnet_temporal.dir/weighted.cpp.o.d"
  "libstructnet_temporal.a"
  "libstructnet_temporal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/structnet_temporal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
