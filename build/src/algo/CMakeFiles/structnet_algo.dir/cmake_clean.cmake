file(REMOVE_RECURSE
  "CMakeFiles/structnet_algo.dir/bridges.cpp.o"
  "CMakeFiles/structnet_algo.dir/bridges.cpp.o.d"
  "CMakeFiles/structnet_algo.dir/chordal.cpp.o"
  "CMakeFiles/structnet_algo.dir/chordal.cpp.o.d"
  "CMakeFiles/structnet_algo.dir/components.cpp.o"
  "CMakeFiles/structnet_algo.dir/components.cpp.o.d"
  "CMakeFiles/structnet_algo.dir/maxflow.cpp.o"
  "CMakeFiles/structnet_algo.dir/maxflow.cpp.o.d"
  "CMakeFiles/structnet_algo.dir/mst.cpp.o"
  "CMakeFiles/structnet_algo.dir/mst.cpp.o.d"
  "CMakeFiles/structnet_algo.dir/shortest_paths.cpp.o"
  "CMakeFiles/structnet_algo.dir/shortest_paths.cpp.o.d"
  "CMakeFiles/structnet_algo.dir/traversal.cpp.o"
  "CMakeFiles/structnet_algo.dir/traversal.cpp.o.d"
  "libstructnet_algo.a"
  "libstructnet_algo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/structnet_algo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
