# Empty dependencies file for structnet_algo.
# This may be replaced when dependencies are built.
