
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/algo/bridges.cpp" "src/algo/CMakeFiles/structnet_algo.dir/bridges.cpp.o" "gcc" "src/algo/CMakeFiles/structnet_algo.dir/bridges.cpp.o.d"
  "/root/repo/src/algo/chordal.cpp" "src/algo/CMakeFiles/structnet_algo.dir/chordal.cpp.o" "gcc" "src/algo/CMakeFiles/structnet_algo.dir/chordal.cpp.o.d"
  "/root/repo/src/algo/components.cpp" "src/algo/CMakeFiles/structnet_algo.dir/components.cpp.o" "gcc" "src/algo/CMakeFiles/structnet_algo.dir/components.cpp.o.d"
  "/root/repo/src/algo/maxflow.cpp" "src/algo/CMakeFiles/structnet_algo.dir/maxflow.cpp.o" "gcc" "src/algo/CMakeFiles/structnet_algo.dir/maxflow.cpp.o.d"
  "/root/repo/src/algo/mst.cpp" "src/algo/CMakeFiles/structnet_algo.dir/mst.cpp.o" "gcc" "src/algo/CMakeFiles/structnet_algo.dir/mst.cpp.o.d"
  "/root/repo/src/algo/shortest_paths.cpp" "src/algo/CMakeFiles/structnet_algo.dir/shortest_paths.cpp.o" "gcc" "src/algo/CMakeFiles/structnet_algo.dir/shortest_paths.cpp.o.d"
  "/root/repo/src/algo/traversal.cpp" "src/algo/CMakeFiles/structnet_algo.dir/traversal.cpp.o" "gcc" "src/algo/CMakeFiles/structnet_algo.dir/traversal.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/structnet_core.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/structnet_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
