file(REMOVE_RECURSE
  "libstructnet_algo.a"
)
