# Empty compiler generated dependencies file for structnet_sim.
# This may be replaced when dependencies are built.
