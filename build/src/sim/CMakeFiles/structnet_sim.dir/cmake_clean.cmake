file(REMOVE_RECURSE
  "CMakeFiles/structnet_sim.dir/distributed_dijkstra.cpp.o"
  "CMakeFiles/structnet_sim.dir/distributed_dijkstra.cpp.o.d"
  "CMakeFiles/structnet_sim.dir/dtn_routing.cpp.o"
  "CMakeFiles/structnet_sim.dir/dtn_routing.cpp.o.d"
  "CMakeFiles/structnet_sim.dir/hybrid_control.cpp.o"
  "CMakeFiles/structnet_sim.dir/hybrid_control.cpp.o.d"
  "CMakeFiles/structnet_sim.dir/local_protocols.cpp.o"
  "CMakeFiles/structnet_sim.dir/local_protocols.cpp.o.d"
  "CMakeFiles/structnet_sim.dir/multi_message.cpp.o"
  "CMakeFiles/structnet_sim.dir/multi_message.cpp.o.d"
  "CMakeFiles/structnet_sim.dir/round_engine.cpp.o"
  "CMakeFiles/structnet_sim.dir/round_engine.cpp.o.d"
  "CMakeFiles/structnet_sim.dir/stale_views.cpp.o"
  "CMakeFiles/structnet_sim.dir/stale_views.cpp.o.d"
  "libstructnet_sim.a"
  "libstructnet_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/structnet_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
