
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/distributed_dijkstra.cpp" "src/sim/CMakeFiles/structnet_sim.dir/distributed_dijkstra.cpp.o" "gcc" "src/sim/CMakeFiles/structnet_sim.dir/distributed_dijkstra.cpp.o.d"
  "/root/repo/src/sim/dtn_routing.cpp" "src/sim/CMakeFiles/structnet_sim.dir/dtn_routing.cpp.o" "gcc" "src/sim/CMakeFiles/structnet_sim.dir/dtn_routing.cpp.o.d"
  "/root/repo/src/sim/hybrid_control.cpp" "src/sim/CMakeFiles/structnet_sim.dir/hybrid_control.cpp.o" "gcc" "src/sim/CMakeFiles/structnet_sim.dir/hybrid_control.cpp.o.d"
  "/root/repo/src/sim/local_protocols.cpp" "src/sim/CMakeFiles/structnet_sim.dir/local_protocols.cpp.o" "gcc" "src/sim/CMakeFiles/structnet_sim.dir/local_protocols.cpp.o.d"
  "/root/repo/src/sim/multi_message.cpp" "src/sim/CMakeFiles/structnet_sim.dir/multi_message.cpp.o" "gcc" "src/sim/CMakeFiles/structnet_sim.dir/multi_message.cpp.o.d"
  "/root/repo/src/sim/round_engine.cpp" "src/sim/CMakeFiles/structnet_sim.dir/round_engine.cpp.o" "gcc" "src/sim/CMakeFiles/structnet_sim.dir/round_engine.cpp.o.d"
  "/root/repo/src/sim/stale_views.cpp" "src/sim/CMakeFiles/structnet_sim.dir/stale_views.cpp.o" "gcc" "src/sim/CMakeFiles/structnet_sim.dir/stale_views.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/structnet_core.dir/DependInfo.cmake"
  "/root/repo/build/src/temporal/CMakeFiles/structnet_temporal.dir/DependInfo.cmake"
  "/root/repo/build/src/labeling/CMakeFiles/structnet_labeling.dir/DependInfo.cmake"
  "/root/repo/build/src/algo/CMakeFiles/structnet_algo.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/structnet_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
