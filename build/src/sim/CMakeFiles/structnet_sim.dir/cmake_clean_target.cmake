file(REMOVE_RECURSE
  "libstructnet_sim.a"
)
