
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/csr.cpp" "src/core/CMakeFiles/structnet_core.dir/csr.cpp.o" "gcc" "src/core/CMakeFiles/structnet_core.dir/csr.cpp.o.d"
  "/root/repo/src/core/digraph.cpp" "src/core/CMakeFiles/structnet_core.dir/digraph.cpp.o" "gcc" "src/core/CMakeFiles/structnet_core.dir/digraph.cpp.o.d"
  "/root/repo/src/core/generators.cpp" "src/core/CMakeFiles/structnet_core.dir/generators.cpp.o" "gcc" "src/core/CMakeFiles/structnet_core.dir/generators.cpp.o.d"
  "/root/repo/src/core/graph.cpp" "src/core/CMakeFiles/structnet_core.dir/graph.cpp.o" "gcc" "src/core/CMakeFiles/structnet_core.dir/graph.cpp.o.d"
  "/root/repo/src/core/io.cpp" "src/core/CMakeFiles/structnet_core.dir/io.cpp.o" "gcc" "src/core/CMakeFiles/structnet_core.dir/io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/structnet_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
