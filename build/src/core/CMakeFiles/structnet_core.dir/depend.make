# Empty dependencies file for structnet_core.
# This may be replaced when dependencies are built.
