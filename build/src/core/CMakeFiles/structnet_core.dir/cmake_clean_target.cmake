file(REMOVE_RECURSE
  "libstructnet_core.a"
)
