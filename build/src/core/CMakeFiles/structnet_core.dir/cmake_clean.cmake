file(REMOVE_RECURSE
  "CMakeFiles/structnet_core.dir/csr.cpp.o"
  "CMakeFiles/structnet_core.dir/csr.cpp.o.d"
  "CMakeFiles/structnet_core.dir/digraph.cpp.o"
  "CMakeFiles/structnet_core.dir/digraph.cpp.o.d"
  "CMakeFiles/structnet_core.dir/generators.cpp.o"
  "CMakeFiles/structnet_core.dir/generators.cpp.o.d"
  "CMakeFiles/structnet_core.dir/graph.cpp.o"
  "CMakeFiles/structnet_core.dir/graph.cpp.o.d"
  "CMakeFiles/structnet_core.dir/io.cpp.o"
  "CMakeFiles/structnet_core.dir/io.cpp.o.d"
  "libstructnet_core.a"
  "libstructnet_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/structnet_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
