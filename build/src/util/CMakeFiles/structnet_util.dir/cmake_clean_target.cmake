file(REMOVE_RECURSE
  "libstructnet_util.a"
)
