file(REMOVE_RECURSE
  "CMakeFiles/structnet_util.dir/histogram.cpp.o"
  "CMakeFiles/structnet_util.dir/histogram.cpp.o.d"
  "CMakeFiles/structnet_util.dir/rng.cpp.o"
  "CMakeFiles/structnet_util.dir/rng.cpp.o.d"
  "CMakeFiles/structnet_util.dir/stats.cpp.o"
  "CMakeFiles/structnet_util.dir/stats.cpp.o.d"
  "CMakeFiles/structnet_util.dir/table.cpp.o"
  "CMakeFiles/structnet_util.dir/table.cpp.o.d"
  "libstructnet_util.a"
  "libstructnet_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/structnet_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
