# Empty compiler generated dependencies file for structnet_util.
# This may be replaced when dependencies are built.
