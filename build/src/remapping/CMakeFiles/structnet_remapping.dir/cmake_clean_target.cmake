file(REMOVE_RECURSE
  "libstructnet_remapping.a"
)
