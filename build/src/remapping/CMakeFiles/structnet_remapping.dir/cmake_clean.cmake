file(REMOVE_RECURSE
  "CMakeFiles/structnet_remapping.dir/feature_space.cpp.o"
  "CMakeFiles/structnet_remapping.dir/feature_space.cpp.o.d"
  "CMakeFiles/structnet_remapping.dir/geo_routing.cpp.o"
  "CMakeFiles/structnet_remapping.dir/geo_routing.cpp.o.d"
  "CMakeFiles/structnet_remapping.dir/small_world.cpp.o"
  "CMakeFiles/structnet_remapping.dir/small_world.cpp.o.d"
  "CMakeFiles/structnet_remapping.dir/tree_embedding.cpp.o"
  "CMakeFiles/structnet_remapping.dir/tree_embedding.cpp.o.d"
  "libstructnet_remapping.a"
  "libstructnet_remapping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/structnet_remapping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
