# Empty dependencies file for structnet_remapping.
# This may be replaced when dependencies are built.
