file(REMOVE_RECURSE
  "CMakeFiles/structnet_labeling.dir/dynamic_mis.cpp.o"
  "CMakeFiles/structnet_labeling.dir/dynamic_mis.cpp.o.d"
  "CMakeFiles/structnet_labeling.dir/fig8_example.cpp.o"
  "CMakeFiles/structnet_labeling.dir/fig8_example.cpp.o.d"
  "CMakeFiles/structnet_labeling.dir/fig9_example.cpp.o"
  "CMakeFiles/structnet_labeling.dir/fig9_example.cpp.o.d"
  "CMakeFiles/structnet_labeling.dir/mis_cds.cpp.o"
  "CMakeFiles/structnet_labeling.dir/mis_cds.cpp.o.d"
  "CMakeFiles/structnet_labeling.dir/safety_levels.cpp.o"
  "CMakeFiles/structnet_labeling.dir/safety_levels.cpp.o.d"
  "CMakeFiles/structnet_labeling.dir/static_labels.cpp.o"
  "CMakeFiles/structnet_labeling.dir/static_labels.cpp.o.d"
  "libstructnet_labeling.a"
  "libstructnet_labeling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/structnet_labeling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
