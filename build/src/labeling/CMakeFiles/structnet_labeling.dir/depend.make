# Empty dependencies file for structnet_labeling.
# This may be replaced when dependencies are built.
