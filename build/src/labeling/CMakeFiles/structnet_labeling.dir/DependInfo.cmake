
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/labeling/dynamic_mis.cpp" "src/labeling/CMakeFiles/structnet_labeling.dir/dynamic_mis.cpp.o" "gcc" "src/labeling/CMakeFiles/structnet_labeling.dir/dynamic_mis.cpp.o.d"
  "/root/repo/src/labeling/fig8_example.cpp" "src/labeling/CMakeFiles/structnet_labeling.dir/fig8_example.cpp.o" "gcc" "src/labeling/CMakeFiles/structnet_labeling.dir/fig8_example.cpp.o.d"
  "/root/repo/src/labeling/fig9_example.cpp" "src/labeling/CMakeFiles/structnet_labeling.dir/fig9_example.cpp.o" "gcc" "src/labeling/CMakeFiles/structnet_labeling.dir/fig9_example.cpp.o.d"
  "/root/repo/src/labeling/mis_cds.cpp" "src/labeling/CMakeFiles/structnet_labeling.dir/mis_cds.cpp.o" "gcc" "src/labeling/CMakeFiles/structnet_labeling.dir/mis_cds.cpp.o.d"
  "/root/repo/src/labeling/safety_levels.cpp" "src/labeling/CMakeFiles/structnet_labeling.dir/safety_levels.cpp.o" "gcc" "src/labeling/CMakeFiles/structnet_labeling.dir/safety_levels.cpp.o.d"
  "/root/repo/src/labeling/static_labels.cpp" "src/labeling/CMakeFiles/structnet_labeling.dir/static_labels.cpp.o" "gcc" "src/labeling/CMakeFiles/structnet_labeling.dir/static_labels.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/structnet_core.dir/DependInfo.cmake"
  "/root/repo/build/src/algo/CMakeFiles/structnet_algo.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/structnet_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
