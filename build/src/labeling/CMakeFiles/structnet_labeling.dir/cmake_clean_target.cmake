file(REMOVE_RECURSE
  "libstructnet_labeling.a"
)
