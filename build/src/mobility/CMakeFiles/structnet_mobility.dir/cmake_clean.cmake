file(REMOVE_RECURSE
  "CMakeFiles/structnet_mobility.dir/contact_trace.cpp.o"
  "CMakeFiles/structnet_mobility.dir/contact_trace.cpp.o.d"
  "CMakeFiles/structnet_mobility.dir/edge_markovian.cpp.o"
  "CMakeFiles/structnet_mobility.dir/edge_markovian.cpp.o.d"
  "CMakeFiles/structnet_mobility.dir/mobility_models.cpp.o"
  "CMakeFiles/structnet_mobility.dir/mobility_models.cpp.o.d"
  "CMakeFiles/structnet_mobility.dir/social_contacts.cpp.o"
  "CMakeFiles/structnet_mobility.dir/social_contacts.cpp.o.d"
  "libstructnet_mobility.a"
  "libstructnet_mobility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/structnet_mobility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
