file(REMOVE_RECURSE
  "libstructnet_mobility.a"
)
