# Empty compiler generated dependencies file for structnet_mobility.
# This may be replaced when dependencies are built.
