
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mobility/contact_trace.cpp" "src/mobility/CMakeFiles/structnet_mobility.dir/contact_trace.cpp.o" "gcc" "src/mobility/CMakeFiles/structnet_mobility.dir/contact_trace.cpp.o.d"
  "/root/repo/src/mobility/edge_markovian.cpp" "src/mobility/CMakeFiles/structnet_mobility.dir/edge_markovian.cpp.o" "gcc" "src/mobility/CMakeFiles/structnet_mobility.dir/edge_markovian.cpp.o.d"
  "/root/repo/src/mobility/mobility_models.cpp" "src/mobility/CMakeFiles/structnet_mobility.dir/mobility_models.cpp.o" "gcc" "src/mobility/CMakeFiles/structnet_mobility.dir/mobility_models.cpp.o.d"
  "/root/repo/src/mobility/social_contacts.cpp" "src/mobility/CMakeFiles/structnet_mobility.dir/social_contacts.cpp.o" "gcc" "src/mobility/CMakeFiles/structnet_mobility.dir/social_contacts.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/structnet_core.dir/DependInfo.cmake"
  "/root/repo/build/src/temporal/CMakeFiles/structnet_temporal.dir/DependInfo.cmake"
  "/root/repo/build/src/algo/CMakeFiles/structnet_algo.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/structnet_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
