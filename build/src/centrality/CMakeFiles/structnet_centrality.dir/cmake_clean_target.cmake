file(REMOVE_RECURSE
  "libstructnet_centrality.a"
)
