# Empty dependencies file for structnet_centrality.
# This may be replaced when dependencies are built.
