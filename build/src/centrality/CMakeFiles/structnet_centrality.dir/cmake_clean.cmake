file(REMOVE_RECURSE
  "CMakeFiles/structnet_centrality.dir/centrality.cpp.o"
  "CMakeFiles/structnet_centrality.dir/centrality.cpp.o.d"
  "CMakeFiles/structnet_centrality.dir/link_analysis.cpp.o"
  "CMakeFiles/structnet_centrality.dir/link_analysis.cpp.o.d"
  "CMakeFiles/structnet_centrality.dir/powerlaw.cpp.o"
  "CMakeFiles/structnet_centrality.dir/powerlaw.cpp.o.d"
  "libstructnet_centrality.a"
  "libstructnet_centrality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/structnet_centrality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
