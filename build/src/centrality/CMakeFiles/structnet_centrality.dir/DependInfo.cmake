
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/centrality/centrality.cpp" "src/centrality/CMakeFiles/structnet_centrality.dir/centrality.cpp.o" "gcc" "src/centrality/CMakeFiles/structnet_centrality.dir/centrality.cpp.o.d"
  "/root/repo/src/centrality/link_analysis.cpp" "src/centrality/CMakeFiles/structnet_centrality.dir/link_analysis.cpp.o" "gcc" "src/centrality/CMakeFiles/structnet_centrality.dir/link_analysis.cpp.o.d"
  "/root/repo/src/centrality/powerlaw.cpp" "src/centrality/CMakeFiles/structnet_centrality.dir/powerlaw.cpp.o" "gcc" "src/centrality/CMakeFiles/structnet_centrality.dir/powerlaw.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/structnet_core.dir/DependInfo.cmake"
  "/root/repo/build/src/algo/CMakeFiles/structnet_algo.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/structnet_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
