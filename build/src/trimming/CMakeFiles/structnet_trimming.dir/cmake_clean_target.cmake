file(REMOVE_RECURSE
  "libstructnet_trimming.a"
)
