file(REMOVE_RECURSE
  "CMakeFiles/structnet_trimming.dir/eg_trimming.cpp.o"
  "CMakeFiles/structnet_trimming.dir/eg_trimming.cpp.o.d"
  "CMakeFiles/structnet_trimming.dir/probabilistic.cpp.o"
  "CMakeFiles/structnet_trimming.dir/probabilistic.cpp.o.d"
  "CMakeFiles/structnet_trimming.dir/spanner.cpp.o"
  "CMakeFiles/structnet_trimming.dir/spanner.cpp.o.d"
  "CMakeFiles/structnet_trimming.dir/topology_control.cpp.o"
  "CMakeFiles/structnet_trimming.dir/topology_control.cpp.o.d"
  "libstructnet_trimming.a"
  "libstructnet_trimming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/structnet_trimming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
