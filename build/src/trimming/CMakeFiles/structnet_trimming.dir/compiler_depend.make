# Empty compiler generated dependencies file for structnet_trimming.
# This may be replaced when dependencies are built.
